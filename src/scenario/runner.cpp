#include "scenario/runner.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "attacks/search.hpp"
#include "attacks/templates.hpp"
#include "control/kalman.hpp"
#include "control/noise.hpp"
#include "detect/detector.hpp"
#include "detect/far.hpp"
#include "detect/noise_floor.hpp"
#include "detect/online.hpp"
#include "detect/roc.hpp"
#include "detect/session.hpp"
#include "scenario/service.hpp"
#include "sim/batch.hpp"
#include "sim/config.hpp"
#include "solver/lp_backend.hpp"
#include "solver/problem.hpp"
#include "solver/z3_backend.hpp"
#include "synth/threshold_synth.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace cpsguard::scenario {

using control::Trace;
using detect::ThresholdVector;
using util::format_double;
using util::require;

namespace {

// Calibration stages that need their own randomness (noise-calibrated
// detector thresholds inside a FAR/ROC scenario) derive their seed from the
// scenario seed with this fixed offset, so the protocol draws and the
// calibration draws never share a substream and every stage stays
// deterministic at any thread count.
constexpr std::uint64_t kCalibrationSeedOffset = 0x9E3779B97F4A7C15ULL;

/// A realized candidate detector: a streaming prototype (cloned per
/// evaluation pass) plus (when it reduces to residue thresholds) the
/// threshold vector and synthesis metadata.
struct BuiltDetector {
  DetectorSpec spec;
  ThresholdVector thresholds;  // empty for chi2/CUSUM
  std::shared_ptr<const detect::OnlineDetector> prototype;
  // Synthesis metadata (zero/false for non-synthesized kinds).
  std::size_t rounds = 0;
  bool converged = false;
  bool certified = false;
  double seconds = 0.0;

  /// Per-run instance factory — the currency of detect::FarCandidate.
  detect::DetectorFactory factory() const {
    return [proto = prototype] { return proto->clone(); };
  }
  std::optional<std::size_t> first_alarm(const Trace& trace) const {
    const auto det = prototype->clone();
    return detect::streaming_first_alarm(*det, trace);
  }
  bool triggered(const Trace& trace) const {
    return first_alarm(trace).has_value();
  }
};

/// Everything one simulation group shares: the reference spec (detector
/// settings may differ per cell, the simulation configuration may not),
/// lazily constructed expensive pieces (solver stack, calibration floor
/// samples) and the lazily recorded phase-1 simulation artifacts every
/// cell's detector bank is evaluated against.
class Context {
 public:
  /// `shared` marks a context serving a multi-cell group: protocols then
  /// prefer the record-once phase-1 artifacts over streaming one-shots.
  /// `norm_only_capable` says every cell served by this context evaluates
  /// only norm-streaming detectors (run_group computes it from the specs'
  /// detector kinds), so the phase-1 artifacts may record residual-norm
  /// series instead of traces — the protocols below still intersect that
  /// with their own eligibility (no pfc filter / empty monitor set /
  /// sim::norm_only_enabled()) before switching.
  explicit Context(ScenarioSpec spec, bool shared = false,
                   bool norm_only_capable = false)
      : spec_(std::move(spec)),
        shared_(shared),
        norm_only_capable_(norm_only_capable),
        horizon_(spec_.effective_horizon()),
        noise_bounds_(spec_.effective_noise_bounds()),
        runs_(spec_.effective_runs()),
        pfc_(spec_.effective_pfc()),
        loop_(spec_.study.loop, [&] {
          linalg::StepKernelOptions options;
          options.condensed = spec_.condensed;
          return options;
        }()) {
    require(horizon_ > 0, "scenario: horizon resolves to zero");
  }

  /// True when several cells share this context's phase-1 artifacts.
  bool shared() const { return shared_; }

  const ScenarioSpec& spec() const { return spec_; }
  std::size_t horizon() const { return horizon_; }
  const linalg::Vector& noise_bounds() const { return noise_bounds_; }
  std::size_t runs() const { return runs_; }
  const synth::Criterion& pfc() const { return pfc_; }
  const control::ClosedLoop& loop() const { return loop_; }
  std::size_t threads() const { return spec_.mc.threads; }
  std::uint64_t seed() const { return spec_.mc.seed; }

  /// Algorithm-1 synthesizer over the (possibly overridden) pfc/horizon.
  synth::AttackVectorSynthesizer& synthesizer() {
    if (!synthesizer_) {
      synth::AttackProblem problem = spec_.study.attack_problem();
      problem.pfc = pfc_;
      problem.horizon = horizon_;
      solver::SolverOptions z3_options;
      if (spec_.solver_timeout_seconds > 0.0)
        z3_options.timeout_seconds = spec_.solver_timeout_seconds;
      auto z3 = std::make_shared<solver::Z3Backend>(z3_options);
      auto lp = spec_.use_finder ? std::make_shared<solver::LpBackend>() : nullptr;
      synthesizer_.emplace(std::move(problem), std::move(z3), std::move(lp));
    }
    return *synthesizer_;
  }

  /// Largest provably-safe static threshold, computed once per group (the
  /// kSynthStatic detector and the ROC SMT adversary share it).
  const synth::StaticSynthesisResult& static_synthesis() {
    if (!static_synthesis_)
      static_synthesis_ = synth::static_threshold_synthesis(synthesizer());
    return *static_synthesis_;
  }

  /// Installs an already-estimated floor, so a protocol that computed the
  /// benign envelope itself (run_noise_floor) calibrates its detectors on
  /// the exact envelope it reports.
  void prime_calibration_floor(double quantile, detect::NoiseFloor floor) {
    floors_.insert_or_assign(quantile, std::move(floor));
  }

  /// Benign residue floor at `quantile`, on the calibration seed.  The
  /// underlying 300-run sample batch is simulated once per group; every
  /// quantile (cached per value) is extracted from it.
  const detect::NoiseFloor& calibration_floor(double quantile) {
    auto it = floors_.find(quantile);
    if (it != floors_.end()) return it->second;
    require(noise_bounds_.size() != 0,
            "scenario: noise-calibrated detector needs noise bounds");
    if (!calibration_samples_) {
      detect::NoiseFloorSetup setup;
      setup.num_runs = 300;
      setup.horizon = horizon_;
      setup.noise_bounds = noise_bounds_;
      setup.norm = spec_.study.norm;
      setup.seed = seed() + kCalibrationSeedOffset;
      setup.threads = threads();
      calibration_samples_.emplace(loop_, setup);
    }
    return floors_.emplace(quantile, calibration_samples_->floor(quantile))
        .first->second;
  }

  /// The FAR protocol's Monte-Carlo knobs (shared by the streaming
  /// one-shot and the record-once phase 1).
  detect::FarSetup far_setup() const {
    detect::FarSetup setup;
    setup.num_runs = runs_;
    setup.horizon = horizon_;
    setup.noise_bounds = noise_bounds_;
    setup.seed = seed();
    setup.threads = threads();
    if (spec_.far_pfc_filter) {
      const synth::Criterion pfc = pfc_;
      setup.pfc = [pfc](const Trace& tr) { return pfc.satisfied(tr); };
      // Criteria decided by x_{T+1} alone (the paper's reach pfc) also get
      // the streaming face, keeping the norm-only fast path eligible with
      // the filter active.  Same Criterion, bit-identical verdicts.
      if (pfc_.final_state_only())
        setup.pfc_final = [pfc](const double* x_final, std::size_t n) {
          return pfc.satisfied_final_state(x_final, n);
        };
    }
    return setup;
  }

  /// Phase 1 of the FAR protocol: the noise batch with per-run verdicts
  /// and recorded residues — or, when every cell's detectors stream the
  /// study norm and the protocol is eligible, just the norm series —
  /// simulated once per group.
  const detect::FarSimulation& far_simulation() {
    if (!far_simulation_) {
      const std::vector<control::Norm> norms{spec_.study.norm};
      far_simulation_.emplace(loop_, spec_.study.mdc, far_setup(),
                              norm_only_capable_ ? &norms : nullptr);
    }
    return *far_simulation_;
  }

  /// The far_against_attack adversary (worst stealthy attack against the
  /// monitors alone), synthesized once per group.
  const synth::AttackResult& far_adversary() {
    if (!far_adversary_)
      far_adversary_ =
          synthesizer().synthesize(ThresholdVector(horizon_), spec_.objective);
    return *far_adversary_;
  }

  /// Phase 1 of the noise-floor protocol: the raw norm samples on the
  /// protocol seed, simulated once per group; cells extract their own
  /// quantile envelopes from them.
  const detect::NoiseFloorSamples& protocol_floor_samples() {
    if (!protocol_samples_) {
      detect::NoiseFloorSetup setup;
      setup.num_runs = runs_;
      setup.horizon = horizon_;
      setup.noise_bounds = noise_bounds_;
      setup.norm = spec_.study.norm;
      setup.seed = seed();
      setup.threads = threads();
      protocol_samples_.emplace(loop_, setup);
    }
    return *protocol_samples_;
  }

  /// Phase 1 of the ROC protocol: attacked signals (template shapes plus
  /// the optional SMT adversary), the simulated workload, and its residue
  /// norms — built once per group.
  struct RocShared {
    std::optional<bool> smt_found;  ///< set when include_smt_attack
    /// Recorded traces; stays empty on the norm-only path (only the
    /// residue norms below are ever evaluated).
    detect::RocWorkload workload;
    detect::RocResidues residues;
    std::size_t benign_runs = 0;
    std::size_t attacked_runs = 0;
  };
  const RocShared& roc_shared() {
    if (roc_shared_) return *roc_shared_;
    const std::size_t T = horizon_;
    const std::size_t dim = spec_.study.loop.plant.num_outputs();
    const RocConfig& roc = spec_.roc;
    const std::vector<double> magnitudes =
        roc.magnitudes.empty() ? std::vector<double>{0.08, 0.12, 0.18, 0.25, 0.35}
                               : roc.magnitudes;

    // Attacked side: the template shapes of the FDI literature at each
    // magnitude, optionally joined by the paper's SMT-synthesized adversary.
    linalg::Vector mask(dim);
    for (std::size_t i = 0; i < dim; ++i) mask[i] = 1.0;
    std::vector<control::Signal> attacked;
    for (const double mag : magnitudes) {
      attacked.push_back(attacks::bias_attack(mask).build(mag, T, dim));
      attacked.push_back(attacks::surge_attack(mask, 0.6).build(mag, T, dim));
      attacked.push_back(attacks::geometric_attack(mask, 1.3).build(mag, T, dim));
      attacked.push_back(attacks::ramp_attack(mask).build(mag, T, dim));
    }
    RocShared shared;
    if (roc.include_smt_attack) {
      const synth::StaticSynthesisResult& safe = static_synthesis();
      const synth::AttackResult smt = synthesizer().synthesize(
          ThresholdVector::constant(T, roc.smt_threshold_scale *
                                           std::max(safe.threshold, 1e-9)),
          spec_.objective);
      shared.smt_found = smt.found();
      if (smt.found()) attacked.push_back(smt.attack);
    }

    detect::WorkloadSetup workload_setup;
    workload_setup.num_runs = runs_;
    workload_setup.horizon = T;
    workload_setup.noise_bounds = noise_bounds_;
    workload_setup.seed = seed();
    workload_setup.threads = threads();
    workload_setup.attacks = std::move(attacked);
    // ROC cells only ever evaluate threshold rules over ||z_k||, so with no
    // monitors to filter benign draws the workload records norm series
    // directly — bit-identical residue norms, no traces materialized.
    if (norm_only_capable_ && spec_.study.mdc.empty() &&
        sim::norm_only_enabled()) {
      shared.residues = detect::make_workload_norms(
          loop_, spec_.study.mdc, workload_setup, spec_.study.norm);
      shared.benign_runs = shared.residues.benign.size();
      shared.attacked_runs = shared.residues.attacked.size();
    } else {
      shared.workload =
          detect::make_workload(loop_, spec_.study.mdc, workload_setup);
      shared.residues =
          detect::RocResidues::compute(shared.workload, spec_.study.norm);
      shared.benign_runs = shared.workload.benign.size();
      shared.attacked_runs = shared.workload.attacked.size();
    }
    roc_shared_ = std::move(shared);
    return *roc_shared_;
  }

 private:
  ScenarioSpec spec_;
  bool shared_;
  bool norm_only_capable_;
  std::size_t horizon_;
  linalg::Vector noise_bounds_;
  std::size_t runs_;
  synth::Criterion pfc_;
  control::ClosedLoop loop_;
  std::optional<synth::AttackVectorSynthesizer> synthesizer_;
  std::optional<synth::StaticSynthesisResult> static_synthesis_;
  std::optional<detect::NoiseFloorSamples> calibration_samples_;
  std::map<double, detect::NoiseFloor> floors_;
  std::optional<detect::FarSimulation> far_simulation_;
  std::optional<synth::AttackResult> far_adversary_;
  std::optional<detect::NoiseFloorSamples> protocol_samples_;
  std::optional<RocShared> roc_shared_;
};

BuiltDetector wrap_residue(DetectorSpec spec, ThresholdVector thresholds,
                           control::Norm norm) {
  BuiltDetector built;
  built.spec = std::move(spec);
  built.thresholds = thresholds;
  built.prototype =
      std::make_shared<detect::ThresholdOnline>(std::move(thresholds), norm);
  return built;
}

BuiltDetector build_detector(Context& ctx, const DetectorSpec& spec) {
  const control::Norm norm = ctx.spec().study.norm;
  const std::size_t T = ctx.horizon();
  switch (spec.kind) {
    case DetectorSpec::Kind::kStatic:
      require(spec.value > 0.0, "scenario: static detector needs a positive value");
      return wrap_residue(spec, ThresholdVector::constant(T, spec.value), norm);
    case DetectorSpec::Kind::kNoiseCalibrated: {
      const detect::NoiseFloor& floor = ctx.calibration_floor(spec.quantile);
      ThresholdVector vth(T);
      for (std::size_t k = 0; k < T; ++k)
        vth.set(k, spec.scale * std::max(floor.quantiles[k], 1e-9));
      return wrap_residue(spec, std::move(vth), norm);
    }
    case DetectorSpec::Kind::kNoisePeakStatic: {
      const detect::NoiseFloor& floor = ctx.calibration_floor(spec.quantile);
      const double level = spec.scale * std::max(floor.peak, 1e-9);
      return wrap_residue(spec, ThresholdVector::constant(T, level), norm);
    }
    case DetectorSpec::Kind::kSynthPivot:
    case DetectorSpec::Kind::kSynthStepwise:
    case DetectorSpec::Kind::kSynthRelaxation: {
      synth::SynthesisResult result;
      if (spec.kind == DetectorSpec::Kind::kSynthPivot)
        result = synth::pivot_threshold_synthesis(ctx.synthesizer(),
                                                  ctx.spec().synthesis);
      else if (spec.kind == DetectorSpec::Kind::kSynthStepwise)
        result = synth::stepwise_threshold_synthesis(ctx.synthesizer(),
                                                     ctx.spec().synthesis);
      else
        result = synth::relaxation_threshold_synthesis(ctx.synthesizer());
      BuiltDetector built = wrap_residue(spec, result.thresholds, norm);
      built.rounds = result.rounds;
      built.converged = result.converged;
      built.certified = result.certified;
      built.seconds = result.total_seconds;
      return built;
    }
    case DetectorSpec::Kind::kSynthStatic: {
      const synth::StaticSynthesisResult& result = ctx.static_synthesis();
      BuiltDetector built = wrap_residue(
          spec, ThresholdVector::constant(T, std::max(result.threshold, 1e-9)),
          norm);
      built.rounds = result.solver_rounds;
      built.converged = result.converged;
      built.certified = result.certified;
      built.seconds = result.total_seconds;
      return built;
    }
    case DetectorSpec::Kind::kChi2: {
      const control::KalmanDesign kd =
          control::design_kalman(ctx.spec().study.loop.plant);
      BuiltDetector built;
      built.spec = spec;
      built.prototype =
          std::make_shared<detect::Chi2Online>(kd.innovation, spec.value);
      return built;
    }
    case DetectorSpec::Kind::kCusum: {
      BuiltDetector built;
      built.spec = spec;
      built.prototype =
          std::make_shared<detect::CusumOnline>(spec.drift, spec.value, norm);
      return built;
    }
  }
  throw util::InvalidArgument("scenario: unknown detector kind");
}

/// Realizes `cell`'s detector list against the group context — the only
/// per-cell stage of the groupable protocols.
std::vector<BuiltDetector> build_detectors(Context& ctx,
                                           const ScenarioSpec& cell) {
  std::vector<BuiltDetector> built;
  built.reserve(cell.detectors.size());
  for (const auto& spec : cell.detectors) built.push_back(build_detector(ctx, spec));
  return built;
}

void add_threshold_series(Report& report, const std::vector<BuiltDetector>& dets) {
  for (const auto& d : dets)
    if (d.spec.threshold_based())
      report.add_series({"th/" + d.spec.label, d.thresholds.values()});
}

void add_synthesis_table(Report& report, const std::vector<BuiltDetector>& dets) {
  if (std::none_of(dets.begin(), dets.end(),
                   [](const BuiltDetector& d) { return d.spec.synthesized(); }))
    return;
  ReportTable& table = report.add_table(
      "synthesis",
      {"algorithm", "rounds", "converged", "certified", "seconds", "set", "monotone"});
  for (const auto& d : dets) {
    if (!d.spec.synthesized()) continue;
    table.rows.push_back({d.spec.label, std::to_string(d.rounds),
                          d.converged ? "yes" : "no", d.certified ? "yes" : "no",
                          format_double(d.seconds, 3),
                          std::to_string(d.thresholds.num_set()),
                          d.thresholds.monotone_decreasing() ? "yes" : "no"});
  }
}

void add_trace_series(Report& report, const std::string& prefix, const Trace& trace,
                      control::Norm norm) {
  if (trace.steps() == 0) return;
  for (std::size_t i = 0; i < trace.x.front().size(); ++i)
    report.add_series({prefix + "/x" + std::to_string(i), trace.state_series(i)});
  for (std::size_t j = 0; j < trace.y.front().size(); ++j) {
    report.add_series({prefix + "/y" + std::to_string(j), trace.output_series(j)});
    report.add_series(
        {prefix + "/dy" + std::to_string(j), trace.output_gradient_series(j)});
  }
  report.add_series({prefix + "/z_norm", trace.residue_norms(norm)});
}

// ---------------------------------------------------------------------------
// Protocol strategies.  Each one takes the group context plus the resolved
// cell spec it reports on: phase 1 (simulation) lives in the context and is
// shared across the group's cells; phase 2 (detector realization and bank
// evaluation) reads only the cell.  For single-cell groups this reduces to
// exactly the classic per-scenario execution.
// ---------------------------------------------------------------------------

void run_far(Context& ctx, const ScenarioSpec& cell, Report& report) {
  std::vector<BuiltDetector> detectors = build_detectors(ctx, cell);
  require(!detectors.empty(), "scenario: FAR protocol needs detectors");

  std::vector<detect::FarCandidate> candidates;
  candidates.reserve(detectors.size());
  for (const auto& d : detectors) candidates.emplace_back(d.spec.label, d.factory());
  // Multi-cell groups simulate once and stream each cell's bank over the
  // recorded residues; a standalone cell takes the constant-memory
  // one-shot (judged inside the batch callback).  Same rules, same report.
  const detect::FarReport far =
      ctx.shared() ? ctx.far_simulation().evaluate(candidates)
                   : detect::evaluate_far(ctx.loop(), ctx.spec().study.mdc,
                                          candidates, ctx.far_setup());

  // Optional adversary column: does each candidate catch the worst stealthy
  // attack Algorithm 1 can produce against the monitors alone?
  const synth::AttackResult* attack = nullptr;
  if (ctx.spec().far_against_attack) {
    attack = &ctx.far_adversary();
    report.add_summary("attack_found", attack->found());
    if (attack->found())
      report.add_summary("attack_deviation",
                         ctx.pfc().deviation(attack->trace));
  }

  report.add_summary("total_runs", std::uint64_t{far.total_runs});
  report.add_summary("discarded_by_pfc", std::uint64_t{far.discarded_by_pfc});
  report.add_summary("discarded_by_mdc", std::uint64_t{far.discarded_by_mdc});

  std::vector<std::string> columns{"detector", "alarms", "evaluated", "far"};
  if (attack) columns.push_back("catches_attack");
  ReportTable& table = report.add_table("far", std::move(columns));
  for (std::size_t i = 0; i < far.rows.size(); ++i) {
    const auto& row = far.rows[i];
    std::vector<std::string> cells{row.name, std::to_string(row.alarms),
                                   std::to_string(row.evaluated),
                                   format_double(row.rate(), 6)};
    if (attack)
      cells.push_back(attack->found()
                          ? (detectors[i].triggered(attack->trace) ? "yes" : "no")
                          : "-");
    table.rows.push_back(std::move(cells));
  }
  add_synthesis_table(report, detectors);
  add_threshold_series(report, detectors);
}

void run_noise_floor(Context& ctx, const ScenarioSpec& cell, Report& report) {
  // Phase 1 (shared): the sample batch.  Phase 2: this cell's quantile.
  const detect::NoiseFloorSamples& samples = ctx.protocol_floor_samples();
  const detect::NoiseFloor floor = samples.floor(cell.quantile);

  report.add_summary("runs", std::uint64_t{ctx.runs()});
  report.add_summary("quantile", cell.quantile);
  report.add_summary("peak", floor.peak);
  report.add_series({"quantile", floor.quantiles});

  // Calibrate this cell's detectors on the exact envelope reported above —
  // noise-calibrated thresholds must be `scale` × these quantiles, not a
  // re-estimate from different draws.  A detector asking for a different
  // quantile would silently ride a separately-drawn floor, so reject the
  // mismatch.
  for (const auto& d : cell.detectors) {
    const bool floor_calibrated = d.kind == DetectorSpec::Kind::kNoiseCalibrated ||
                                  d.kind == DetectorSpec::Kind::kNoisePeakStatic;
    require(!floor_calibrated || d.quantile == cell.quantile,
            "scenario: noise-floor detectors must use the scenario quantile");
  }
  ctx.prime_calibration_floor(cell.quantile, floor);
  std::vector<BuiltDetector> detectors = build_detectors(ctx, cell);
  if (!detectors.empty()) {
    ReportTable& table =
        report.add_table("floor", {"detector", "instants_below_floor"});
    for (const auto& d : detectors) {
      require(d.spec.threshold_based(),
              "scenario: noise-floor diagnostics need threshold detectors");
      table.rows.push_back(
          {d.spec.label, std::to_string(floor.instants_below(d.thresholds))});
    }
    add_threshold_series(report, detectors);
  }
}

void run_single(Context& ctx, const ScenarioSpec& cell, Report& report) {
  const control::Norm norm = cell.study.norm;
  const Trace nominal = ctx.loop().simulate(ctx.horizon());
  util::Rng rng = util::Rng::substream(ctx.seed(), 0);
  const control::Signal noise =
      control::bounded_uniform_signal(rng, ctx.horizon(), ctx.noise_bounds());
  const Trace noisy =
      ctx.loop().simulate(ctx.horizon(), nullptr, nullptr, &noise);

  const synth::Criterion pfc = ctx.pfc();
  report.add_summary("pfc", pfc.describe());
  report.add_summary("nominal_pfc_satisfied", pfc.satisfied(nominal));
  report.add_summary("noisy_pfc_satisfied", pfc.satisfied(noisy));
  report.add_summary("nominal_deviation", pfc.deviation(nominal));
  report.add_summary("noisy_deviation", pfc.deviation(noisy));
  const auto residues = noisy.residue_norms(norm);
  report.add_summary("noisy_residue_peak",
                     residues.empty()
                         ? 0.0
                         : *std::max_element(residues.begin(), residues.end()));
  report.add_summary("monitors_silent_on_noise",
                     cell.study.mdc.stealthy(noisy));
  add_trace_series(report, "nominal", nominal, norm);
  add_trace_series(report, "noisy", noisy, norm);

  std::vector<BuiltDetector> detectors = build_detectors(ctx, cell);
  if (!detectors.empty()) {
    // The verdict table streams through the service-facing Session API —
    // the same latched first-alarm semantics as the batch bank, one feed()
    // per recorded instant (equivalence pinned by tests/session_test.cpp).
    std::vector<std::string> labels;
    std::vector<detect::DetectorFactory> factories;
    labels.reserve(detectors.size());
    factories.reserve(detectors.size());
    for (const auto& d : detectors) {
      labels.push_back(d.spec.label);
      factories.push_back(d.factory());
    }
    auto blueprint = std::make_shared<const detect::SessionBlueprint>(
        cell.name, std::move(labels), std::move(factories));
    detect::Session session(std::move(blueprint));
    for (const auto& z : noisy.z) session.feed(z);
    ReportTable& table = report.add_table("single", {"detector", "alarms_on_noise"});
    for (std::size_t i = 0; i < detectors.size(); ++i)
      table.rows.push_back(
          {detectors[i].spec.label, session.first_alarms()[i] ? "yes" : "no"});
    add_threshold_series(report, detectors);
  }
}

void run_roc(Context& ctx, const ScenarioSpec& cell, Report& report) {
  std::vector<BuiltDetector> detectors = build_detectors(ctx, cell);
  require(!detectors.empty(), "scenario: ROC protocol needs detectors");
  for (const auto& d : detectors)
    require(d.spec.threshold_based(),
            "scenario: ROC sweeps need threshold-based detectors");

  // Phase 1 (shared): attacked signals, workload simulation, residue
  // norms.  Phase 2: this cell's detectors over its own scale grid.
  const Context::RocShared& shared = ctx.roc_shared();
  if (shared.smt_found.has_value())
    report.add_summary("smt_attack_found", *shared.smt_found);
  report.add_summary("benign_runs", std::uint64_t{shared.benign_runs});
  report.add_summary("attacked_runs", std::uint64_t{shared.attacked_runs});

  detect::RocOptions options;
  options.scales = cell.roc.scales.empty() ? detect::log_scales(0.25, 8.0, 13)
                                           : cell.roc.scales;
  options.norm = ctx.spec().study.norm;
  options.threads = ctx.threads();

  report.add_series({"scale", options.scales});
  for (const auto& d : detectors) {
    const detect::RocCurve curve =
        detect::evaluate_roc(d.spec.label, d.thresholds, shared.residues, options);
    report.add_summary("auc/" + d.spec.label, curve.auc());
    ReportTable& table = report.add_table(
        "roc/" + d.spec.label, {"scale", "far", "detection", "mean_delay"});
    std::vector<double> fars, detections;
    for (const auto& p : curve.points) {
      table.rows.push_back({format_cell(p.scale), format_double(p.false_alarm_rate, 6),
                            format_double(p.detection_rate, 6),
                            format_double(p.mean_detection_delay, 4)});
      fars.push_back(p.false_alarm_rate);
      detections.push_back(p.detection_rate);
    }
    report.add_series({"far/" + d.spec.label, std::move(fars)});
    report.add_series({"detection/" + d.spec.label, std::move(detections)});
  }
  add_synthesis_table(report, detectors);
  add_threshold_series(report, detectors);
}

void run_template_search(Context& ctx, const ScenarioSpec& cell, Report& report) {
  // The search protocol reports "caught by THE detector": one deployed
  // threshold detector at most.
  require(cell.detectors.size() <= 1,
          "scenario: template search takes at most one deployed detector");
  std::vector<BuiltDetector> detectors = build_detectors(ctx, cell);
  const detect::ResidueDetector* detector = nullptr;
  std::optional<detect::ResidueDetector> holder;
  if (!detectors.empty()) {
    require(detectors.front().spec.threshold_based(),
            "scenario: template search needs a threshold detector");
    holder.emplace(detectors.front().thresholds, cell.study.norm);
    detector = &*holder;
  }

  attacks::SearchOptions options;
  options.threads = ctx.threads();
  const std::size_t dim = cell.study.loop.plant.num_outputs();
  const auto results = attacks::search_templates(
      ctx.loop(), ctx.pfc(), cell.study.mdc, detector, ctx.horizon(),
      attacks::standard_library(dim, ctx.horizon()), options);

  std::size_t stealthy = 0;
  ReportTable& table = report.add_table(
      "templates", {"template", "min_magnitude", "caught_by_monitors",
                    "caught_by_detector", "residue_peak", "deviation", "stealthy"});
  for (const auto& r : results) {
    if (r.stealthy_success()) ++stealthy;
    table.rows.push_back(
        {r.name,
         r.min_violating_magnitude ? format_cell(*r.min_violating_magnitude) : "-",
         r.caught_by_monitors ? "yes" : "no", r.caught_by_detector ? "yes" : "no",
         format_cell(r.residue_peak), format_cell(r.deviation),
         r.stealthy_success() ? "yes" : "no"});
  }
  report.add_summary("templates", std::uint64_t{results.size()});
  report.add_summary("stealthy_successes", std::uint64_t{stealthy});
  add_threshold_series(report, detectors);
}

void run_synthesis(Context& ctx, const ScenarioSpec& cell, Report& report) {
  std::vector<BuiltDetector> detectors = build_detectors(ctx, cell);
  require(!detectors.empty(), "scenario: synthesis protocol needs algorithms");
  for (const auto& d : detectors)
    require(d.spec.synthesized(),
            "scenario: synthesis protocol takes synthesis detector kinds");

  ReportTable& table = report.add_table(
      "synthesis", {"algorithm", "rounds", "converged", "certified", "seconds",
                    "set", "monotone", "recheck"});
  for (const auto& d : detectors) {
    // Safety cross-check: the final vector must admit no stealthy attack.
    const synth::AttackResult recheck = ctx.synthesizer().synthesize(d.thresholds);
    table.rows.push_back({d.spec.label, std::to_string(d.rounds),
                          d.converged ? "yes" : "no", d.certified ? "yes" : "no",
                          format_double(d.seconds, 3),
                          std::to_string(d.thresholds.num_set()),
                          d.thresholds.monotone_decreasing() ? "yes" : "no",
                          solver::status_name(recheck.status)});
    report.add_summary("converged/" + d.spec.label, d.converged);
  }
  add_threshold_series(report, detectors);
}

void run_attack(Context& ctx, const ScenarioSpec& cell, Report& report) {
  const control::Norm norm = cell.study.norm;
  // No detectors: the paper's "monitors alone" probe.  Otherwise exactly
  // one threshold detector is the deployed one the attack must evade (a
  // longer list would be silently ignored — reject it instead).
  require(cell.detectors.size() <= 1,
          "scenario: attack synthesis takes at most one deployed detector");
  ThresholdVector deployed(ctx.horizon());
  std::vector<BuiltDetector> detectors = build_detectors(ctx, cell);
  if (!detectors.empty()) {
    require(detectors.front().spec.threshold_based(),
            "scenario: attack synthesis needs a threshold detector");
    deployed = detectors.front().thresholds;
    add_threshold_series(report, detectors);
  }
  const synth::AttackResult attack =
      ctx.synthesizer().synthesize(deployed, cell.objective);

  report.add_summary("status", solver::status_name(attack.status));
  report.add_summary("found", attack.found());
  report.add_summary("certified", attack.certified);
  report.add_summary("backend", attack.backend);
  report.add_summary("solve_seconds", format_double(attack.solve_seconds, 3));
  const Trace nominal = ctx.loop().simulate(ctx.horizon());
  add_trace_series(report, "nominal", nominal, norm);
  if (!attack.found()) return;

  const synth::Criterion pfc = ctx.pfc();
  report.add_summary("deviation", pfc.deviation(attack.trace));
  report.add_summary("tolerance", pfc.tolerance());
  report.add_summary("monitors_silent",
                     cell.study.mdc.stealthy(attack.trace));
  add_trace_series(report, "attack", attack.trace, norm);
  if (!attack.attack.empty() && attack.attack.front().size() > 0) {
    const std::size_t dim = attack.attack.front().size();
    for (std::size_t j = 0; j < dim; ++j) {
      std::vector<double> channel;
      channel.reserve(attack.attack.size());
      for (const auto& a : attack.attack) channel.push_back(a[j]);
      report.add_series({"attack/a" + std::to_string(j), std::move(channel)});
    }
  }

  // Per-monitor verdicts: longest violation run vs the dead zone.
  const monitor::MonitorSet& mdc = cell.study.mdc;
  if (mdc.size() != 0) {
    ReportTable& table =
        report.add_table("monitors", {"monitor", "max_violation_run", "alarm"});
    for (std::size_t i = 0; i < mdc.size(); ++i) {
      std::size_t run = 0, max_run = 0;
      for (std::size_t k = 0; k < ctx.horizon(); ++k) {
        run = mdc.at(i).violated(attack.trace, k) ? run + 1 : 0;
        max_run = std::max(max_run, run);
      }
      table.rows.push_back({mdc.at(i).describe(), std::to_string(max_run),
                            max_run >= mdc.dead_zone() ? "yes" : "no"});
    }
  }
}

/// Executes one cell against its (possibly shared) context.
Report execute(Context& ctx, const ScenarioSpec& cell) {
  Report report(cell.name, protocol_name(cell.protocol));
  report.add_summary("case_study", cell.study.name);
  report.add_summary("horizon", std::uint64_t{ctx.horizon()});
  report.add_summary("seed", std::uint64_t{cell.mc.seed});
  CPSG_INFO("scenario") << "running " << cell.name << " ("
                        << protocol_name(cell.protocol) << ") on "
                        << sim::resolve_threads(ctx.threads()) << " thread(s)";

  switch (cell.protocol) {
    case Protocol::kSingle: run_single(ctx, cell, report); break;
    case Protocol::kFar: run_far(ctx, cell, report); break;
    case Protocol::kNoiseFloor: run_noise_floor(ctx, cell, report); break;
    case Protocol::kRoc: run_roc(ctx, cell, report); break;
    case Protocol::kTemplateSearch: run_template_search(ctx, cell, report); break;
    case Protocol::kSynthesis: run_synthesis(ctx, cell, report); break;
    case Protocol::kAttack: run_attack(ctx, cell, report); break;
  }
  return report;
}

/// Simulation compatibility across a group: everything that feeds phase 1
/// (the fields sweep::simulation_fingerprint hashes) must agree.  The
/// sweep engine guarantees this through the fingerprint; these checks
/// catch hand-built groups.
void require_same_simulation(const ScenarioSpec& ref, const ScenarioSpec& cell) {
  const auto bad = [&](const char* what) {
    throw util::InvalidArgument(
        std::string("scenario: run_group cells differ on simulation field '") +
        what + "' (" + ref.name + " vs " + cell.name + ")");
  };
  const auto same_vector = [](const linalg::Vector& a, const linalg::Vector& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i] != b[i]) return false;
    return true;
  };
  const auto same_matrix = [](const linalg::Matrix& a, const linalg::Matrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
    const std::size_t n = a.rows() * a.cols();
    for (std::size_t i = 0; i < n; ++i)
      if (a.data()[i] != b.data()[i]) return false;
    return true;
  };

  if (cell.protocol != ref.protocol) bad("protocol");
  if (cell.study.name != ref.study.name) bad("study");
  const control::LoopConfig& rl = ref.study.loop;
  const control::LoopConfig& cl = cell.study.loop;
  if (!same_matrix(cl.plant.a, rl.plant.a) || !same_matrix(cl.plant.b, rl.plant.b) ||
      !same_matrix(cl.plant.c, rl.plant.c) || !same_matrix(cl.plant.d, rl.plant.d) ||
      !same_matrix(cl.plant.q, rl.plant.q) || !same_matrix(cl.plant.r, rl.plant.r) ||
      !same_matrix(cl.kalman_gain, rl.kalman_gain) ||
      !same_matrix(cl.feedback_gain, rl.feedback_gain) ||
      !same_vector(cl.operating_point.x_ss, rl.operating_point.x_ss) ||
      !same_vector(cl.operating_point.u_ss, rl.operating_point.u_ss) ||
      !same_vector(cl.x1, rl.x1) || !same_vector(cl.xhat1, rl.xhat1) ||
      !same_vector(cl.u1, rl.u1))
    bad("loop");
  if (cell.study.norm != ref.study.norm) bad("norm");
  if (cell.study.mdc.describe() != ref.study.mdc.describe()) bad("mdc");
  if (cell.effective_pfc().describe() != ref.effective_pfc().describe())
    bad("pfc");
  if (cell.effective_pfc().tolerance() != ref.effective_pfc().tolerance())
    bad("pfc_tolerance");
  if (cell.study.attack_bound != ref.study.attack_bound) bad("attack_bound");
  if (cell.study.attack_bounds.has_value() != ref.study.attack_bounds.has_value() ||
      (cell.study.attack_bounds &&
       !same_vector(*cell.study.attack_bounds, *ref.study.attack_bounds)))
    bad("attack_bounds");
  if (cell.effective_runs() != ref.effective_runs()) bad("runs");
  if (cell.effective_horizon() != ref.effective_horizon()) bad("horizon");
  if (cell.mc.seed != ref.mc.seed) bad("seed");
  if (!same_vector(ref.effective_noise_bounds(), cell.effective_noise_bounds()))
    bad("noise_bounds");
  if (cell.far_pfc_filter != ref.far_pfc_filter) bad("far_pfc_filter");
  if (cell.far_against_attack != ref.far_against_attack) bad("far_against_attack");
  if (cell.roc.magnitudes != ref.roc.magnitudes) bad("roc.magnitudes");
  if (cell.roc.include_smt_attack != ref.roc.include_smt_attack)
    bad("roc.include_smt_attack");
  if (cell.roc.smt_threshold_scale != ref.roc.smt_threshold_scale)
    bad("roc.smt_threshold_scale");
  if (cell.objective != ref.objective) bad("objective");
  if (cell.synthesis.max_rounds != ref.synthesis.max_rounds ||
      cell.synthesis.threshold_floor != ref.synthesis.threshold_floor ||
      cell.synthesis.progress_margin != ref.synthesis.progress_margin ||
      cell.synthesis.counterexample_objective !=
          ref.synthesis.counterexample_objective)
    bad("synthesis");
  if (cell.use_finder != ref.use_finder) bad("use_finder");
  if (cell.solver_timeout_seconds != ref.solver_timeout_seconds)
    bad("solver_timeout_seconds");
  if (cell.condensed != ref.condensed) bad("condensed");
}

}  // namespace

std::vector<RealizedDetector> realize_detectors(const ScenarioSpec& spec) {
  require(!spec.detectors.empty(),
          "scenario: realize_detectors needs a spec with detectors");
  // A private context runs the same build pipeline the protocols use: same
  // derived calibration seed, same synthesis stack, bit-identical detectors.
  Context ctx(spec);
  std::vector<BuiltDetector> built = build_detectors(ctx, spec);
  std::vector<RealizedDetector> out;
  out.reserve(built.size());
  for (BuiltDetector& b : built) {
    RealizedDetector r;
    r.factory = b.factory();
    r.spec = std::move(b.spec);
    r.thresholds = std::move(b.thresholds);
    out.push_back(std::move(r));
  }
  return out;
}

Report ExperimentRunner::run(const ScenarioSpec& spec,
                             const Overrides& overrides) const {
  std::vector<Report> reports = run_group({spec}, overrides);
  return std::move(reports.front());
}

std::vector<Report> ExperimentRunner::run_group(
    const std::vector<ScenarioSpec>& specs, const Overrides& overrides) const {
  require(!specs.empty(), "scenario: run_group needs at least one spec");

  std::vector<ScenarioSpec> resolved;
  resolved.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    ScenarioSpec r = spec;
    if (overrides.threads) r.mc.threads = *overrides.threads;
    if (overrides.num_runs) r.mc.num_runs = *overrides.num_runs;
    if (overrides.seed) r.mc.seed = *overrides.seed;
    if (overrides.condensed) r.condensed = *overrides.condensed;
    resolved.push_back(std::move(r));
  }

  // The Monte-Carlo protocols share one context (hence one simulate
  // phase); the rest execute standalone, context and all.
  const bool groupable = protocol_shares_simulation(resolved.front().protocol);
  if (resolved.size() > 1 && groupable)
    for (const ScenarioSpec& cell : resolved)
      require_same_simulation(resolved.front(), cell);

  // Norm-only capability of the whole group: the shared phase-1 record may
  // drop full traces only when EVERY cell's detector bank streams residual
  // norms.  FAR candidates come straight from the detector specs (chi²
  // needs the residue vector); ROC cells are threshold-rule-only by
  // construction and noise floors consume nothing but ||z_k||, so those
  // protocols are capable on the detector axis by definition.  The
  // protocols themselves still intersect this with pfc/monitor/toggle
  // eligibility.
  bool norm_only_capable = false;
  switch (resolved.front().protocol) {
    case Protocol::kFar:
      norm_only_capable = true;
      for (const ScenarioSpec& cell : resolved)
        for (const DetectorSpec& d : cell.detectors)
          norm_only_capable = norm_only_capable && d.norm_streaming();
      break;
    case Protocol::kNoiseFloor:
    case Protocol::kRoc:
      norm_only_capable = true;
      break;
    default:
      break;
  }

  std::vector<Report> reports;
  reports.reserve(resolved.size());
  std::optional<Context> shared;
  for (const ScenarioSpec& cell : resolved) {
    if (groupable) {
      if (!shared)
        shared.emplace(resolved.front(), /*shared=*/resolved.size() > 1,
                       norm_only_capable);
      reports.push_back(execute(*shared, cell));
    } else {
      Context ctx(cell);
      reports.push_back(execute(ctx, cell));
    }
    // Condensed-kernel runs trade the bit-exactness contract for
    // throughput; say so in the artifact itself.
    if (cell.condensed)
      reports.back().add_summary("step_kernel", "condensed (non-bit-exact)");
  }
  return reports;
}

}  // namespace cpsguard::scenario
