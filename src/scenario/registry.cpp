#include "scenario/registry.hpp"

#include "control/lti.hpp"
#include "models/aircraft.hpp"
#include "models/dcmotor.hpp"
#include "models/lfc.hpp"
#include "models/quadtank.hpp"
#include "models/suspension.hpp"
#include "models/trajectory.hpp"
#include "models/vsc.hpp"
#include "util/status.hpp"

namespace cpsguard::scenario {

using util::require;

namespace {

// The quickstart plant of examples/quickstart.cpp and the README: a
// double-integrator-ish deviation loop at 10 Hz with a 0.4 m tracking
// event.  Registered like the paper studies so the 60-second tour is
// `cpsguard_cli run quickstart`.
models::CaseStudy make_quickstart_study() {
  control::ContinuousLti ct;
  ct.a = linalg::Matrix{{0.0, 1.0}, {-4.0, -2.8}};
  ct.b = linalg::Matrix{{0.0}, {1.0}};
  ct.c = linalg::Matrix{{1.0, 0.0}};
  ct.d = linalg::Matrix{{0.0}};
  control::DiscreteLti plant = control::c2d(ct, 0.1);
  plant.q = 1e-3 * linalg::Matrix::identity(2);
  plant.r = linalg::Matrix{{2.5e-5}};

  control::LoopConfig loop = control::LoopConfig::design(
      plant, /*state_cost=*/linalg::Matrix::diagonal(linalg::Vector{400.0, 40.0}),
      /*input_cost=*/linalg::Matrix{{0.2}}, /*reference=*/linalg::Vector{0.0});
  loop.x1 = linalg::Vector{0.4, 0.0};
  loop.xhat1 = loop.x1;

  models::CaseStudy cs{"quickstart",
                       loop,
                       synth::ReachCriterion(/*state_index=*/0, /*target=*/0.0,
                                             /*tol=*/0.05),
                       monitor::MonitorSet{},
                       /*horizon=*/10,
                       control::Norm::kInf,
                       linalg::Vector{0.01},
                       /*attack_bound=*/0.3};
  return cs;
}

ScenarioSpec base_spec(std::string name, std::string title,
                       const models::CaseStudy& study, Protocol protocol) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.title = std::move(title);
  spec.study = study;
  spec.protocol = protocol;
  return spec;
}

// The paper fixtures and extension experiments, registered on top of the
// per-study default families.
void register_paper_scenarios(Registry& registry) {
  const models::CaseStudy vsc = models::make_vsc_case_study();
  const models::CaseStudy dcmotor = models::make_dcmotor_case_study();
  const models::CaseStudy suspension = models::make_suspension_case_study();

  // Trajectory tracking with a cold estimator — the paper's Fig 1 setting
  // (x̂1 = 0 while x1 = 0.4 m): benign residues start large and decay with
  // the estimator transient.
  models::CaseStudy cold = models::make_trajectory_case_study();
  cold.name = "trajectory-tracking (cold estimator)";
  cold.loop.xhat1 = linalg::Vector(cold.loop.plant.num_states());

  {  // The quickstart tour: FAR of a relaxation-synthesized detector.
    ScenarioSpec spec = base_spec(
        "quickstart",
        "synthesize a certified variable threshold and measure its FAR",
        registry.study("quickstart"), Protocol::kFar);
    spec.mc.num_runs = 500;
    spec.detectors = {DetectorSpec::synthesis(
        DetectorSpec::Kind::kSynthRelaxation, "synthesized")};
    registry.add(std::move(spec));
  }
  {  // Table 1: FAR of Algorithm 2 / Algorithm 3 / static baseline on VSC.
    ScenarioSpec spec = base_spec(
        "table1", "VSC false alarm rates: variable vs static thresholds (paper "
                  "Table 1: 61.5 % / 45.6 % / 98.9 %)",
        vsc, Protocol::kFar);
    spec.mc.num_runs = 1000;
    spec.mc.seed = 1234;
    spec.synthesis.max_rounds = 300;
    spec.detectors = {
        DetectorSpec::synthesis(DetectorSpec::Kind::kSynthPivot, "pivot (Alg 2)"),
        DetectorSpec::synthesis(DetectorSpec::Kind::kSynthStepwise,
                                "step-wise (Alg 3)"),
        DetectorSpec::synthesis(DetectorSpec::Kind::kSynthStatic,
                                "static (baseline)")};
    registry.add(std::move(spec));
  }
  {  // Fig 2: the stealthy attack bypassing the industrial monitors.
    ScenarioSpec spec = base_spec(
        "fig2", "VSC: most damaging stealthy attack vs the monitoring system",
        vsc, Protocol::kAttack);
    spec.objective = synth::AttackObjective::kMaxDeviation;
    registry.add(std::move(spec));
  }
  {  // Fig 3: Algorithms 2 and 3 on the VSC.
    ScenarioSpec spec = base_spec(
        "fig3", "VSC: variable-threshold synthesis (Algorithms 2 and 3)", vsc,
        Protocol::kSynthesis);
    spec.synthesis.max_rounds = 300;
    spec.detectors = {
        DetectorSpec::synthesis(DetectorSpec::Kind::kSynthPivot, "pivot (Alg 2)"),
        DetectorSpec::synthesis(DetectorSpec::Kind::kSynthStepwise,
                                "step-wise (Alg 3)")};
    registry.add(std::move(spec));
  }
  {  // Fig 1 ingredients: the benign residue envelope on the cold estimator.
    ScenarioSpec spec = base_spec(
        "fig1/floor",
        "trajectory (cold estimator): benign residue envelope (95 % quantile) "
        "and the illustrative vth riding 40 % above it",
        cold, Protocol::kNoiseFloor);
    spec.mc.num_runs = 300;
    spec.detectors = {DetectorSpec::noise_calibrated("vth", 1.4)};
    registry.add(std::move(spec));
  }
  {  // Fig 1 traces: nominal vs seeded noisy run.
    ScenarioSpec spec = base_spec(
        "fig1/single", "trajectory (cold estimator): nominal and noisy traces",
        cold, Protocol::kSingle);
    spec.mc.seed = 2020;
    registry.add(std::move(spec));
  }
  {  // ROC extension (E1): variable vs static across the whole sweep.
    ScenarioSpec spec = base_spec(
        "roc_paper",
        "trajectory (cold estimator): ROC sweep, synthesized variable vs "
        "static thresholds on a template + SMT attack workload",
        cold, Protocol::kRoc);
    spec.mc.num_runs = 400;
    spec.mc.seed = 2020;
    spec.roc.include_smt_attack = true;
    spec.detectors = {DetectorSpec::synthesis(
                          DetectorSpec::Kind::kSynthRelaxation,
                          "variable (relaxation)"),
                      DetectorSpec::synthesis(DetectorSpec::Kind::kSynthStatic,
                                              "static baseline")};
    registry.add(std::move(spec));
  }
  {  // Detector family trade-off on the DC motor.
    ScenarioSpec spec = base_spec(
        "dcmotor/tradeoff",
        "DC motor: synthesized threshold vs chi-squared and CUSUM baselines "
        "(attack coverage + FAR)",
        dcmotor, Protocol::kFar);
    spec.mc.num_runs = 400;
    spec.mc.seed = 999;
    spec.far_pfc_filter = false;  // the tradeoff study keeps every benign run
    spec.far_against_attack = true;
    spec.detectors = {
        DetectorSpec::synthesis(DetectorSpec::Kind::kSynthRelaxation,
                                "variable threshold (synth)"),
        DetectorSpec::synthesis(DetectorSpec::Kind::kSynthStatic,
                                "static threshold (max safe)"),
        DetectorSpec::chi2("chi-squared (1% tail)", 6.63),
        DetectorSpec::cusum("CUSUM", 0.02, 0.1)};
    registry.add(std::move(spec));
  }
  {  // Hardening workflow: certified relaxation synthesis on the VSC.
    ScenarioSpec spec = base_spec(
        "vsc/harden",
        "VSC: harden the monitoring system with a certified variable threshold",
        vsc, Protocol::kSynthesis);
    spec.detectors = {DetectorSpec::synthesis(
        DetectorSpec::Kind::kSynthRelaxation, "relaxation")};
    registry.add(std::move(spec));
  }
  {  // Deployment fixture: certified synthesis on the suspension study.
    ScenarioSpec spec = base_spec(
        "suspension/synth",
        "suspension: certified threshold synthesis for codegen deployment",
        suspension, Protocol::kSynthesis);
    spec.detectors = {DetectorSpec::synthesis(
        DetectorSpec::Kind::kSynthRelaxation, "relaxation")};
    registry.add(std::move(spec));
  }
}

}  // namespace

Registry& Registry::instance() {
  static Registry registry = [] {
    Registry r;
    r.add_study("quickstart", make_quickstart_study());
    r.add_study("aircraft", models::make_aircraft_pitch_case_study());
    r.add_study("dcmotor", models::make_dcmotor_case_study());
    r.add_study("lfc", models::make_lfc_case_study());
    r.add_study("quadtank", models::make_quadtank_case_study());
    r.add_study("suspension", models::make_suspension_case_study());
    r.add_study("trajectory", models::make_trajectory_case_study());
    r.add_study("vsc", models::make_vsc_case_study());
    register_paper_scenarios(r);
    return r;
  }();
  return registry;
}

void Registry::add(ScenarioSpec spec) {
  require(!spec.name.empty(), "Registry: scenario needs a name");
  const auto [it, inserted] = scenarios_.emplace(spec.name, std::move(spec));
  require(inserted, "Registry: duplicate scenario '" + it->first + "'");
}

void Registry::add_study(const std::string& key, models::CaseStudy study) {
  require(!key.empty(), "Registry: study needs a key");
  const auto [it, inserted] = studies_.emplace(key, std::move(study));
  require(inserted, "Registry: duplicate study '" + key + "'");
  const models::CaseStudy& cs = it->second;

  add(base_spec(key + "/single", cs.name + ": nominal + seeded noisy run", cs,
                Protocol::kSingle));
  {
    ScenarioSpec far = base_spec(
        key + "/far", cs.name + ": Monte-Carlo FAR of noise-calibrated detectors",
        cs, Protocol::kFar);
    far.detectors = {DetectorSpec::noise_calibrated("variable (1.4x floor)"),
                     DetectorSpec::noise_peak_static("static (benign peak)")};
    add(std::move(far));
  }
  add(base_spec(key + "/noise_floor",
                cs.name + ": benign residue-norm quantile envelope", cs,
                Protocol::kNoiseFloor));
  {
    ScenarioSpec roc = base_spec(
        key + "/roc", cs.name + ": ROC sweep of noise-calibrated detectors", cs,
        Protocol::kRoc);
    roc.mc.num_runs = 200;
    roc.detectors = {DetectorSpec::noise_calibrated("variable (1.4x floor)"),
                     DetectorSpec::noise_peak_static("static (benign peak)")};
    add(std::move(roc));
  }
  {
    ScenarioSpec templates = base_spec(
        key + "/templates",
        cs.name + ": smallest-magnitude template attack search vs the "
                  "noise-calibrated detector",
        cs, Protocol::kTemplateSearch);
    templates.detectors = {DetectorSpec::noise_calibrated("variable (1.4x floor)")};
    add(std::move(templates));
  }
}

bool Registry::has(const std::string& name) const {
  return scenarios_.count(name) != 0;
}

const ScenarioSpec* Registry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

const ScenarioSpec& Registry::at(const std::string& name) const {
  if (const ScenarioSpec* spec = find(name)) return *spec;
  std::string message = "Registry: unknown scenario '" + name + "'; known:";
  for (const auto& [key, spec] : scenarios_) message += " " + key;
  throw util::InvalidArgument(message);
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [key, spec] : scenarios_) out.push_back(key);
  return out;
}

std::vector<std::string> Registry::study_names() const {
  std::vector<std::string> out;
  out.reserve(studies_.size());
  for (const auto& [key, study] : studies_) out.push_back(key);
  return out;
}

const models::CaseStudy& Registry::study(const std::string& key) const {
  const auto it = studies_.find(key);
  if (it == studies_.end()) {
    std::string message = "Registry: unknown case study '" + key + "'; known:";
    for (const auto& [name, study] : studies_) message += " " + name;
    throw util::InvalidArgument(message);
  }
  return it->second;
}

}  // namespace cpsguard::scenario
