// spec.hpp — declarative description of one experiment scenario.
//
// The paper's evaluation is a cross product: case-study plant × benign
// noise envelope × detector/threshold configuration × protocol (single
// run, Monte-Carlo FAR, ROC sweep, noise floor, template search, threshold
// or attack synthesis).  A ScenarioSpec captures one point of that product
// as plain data, so the whole space is enumerable (scenario::Registry),
// scriptable (cpsguard_cli) and executable by one engine
// (scenario::ExperimentRunner) instead of a hand-written main() per
// experiment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "models/case_study.hpp"
#include "sim/config.hpp"
#include "synth/attack_synth.hpp"
#include "synth/threshold_synth.hpp"

namespace cpsguard::scenario {

/// The experiment protocols the runner knows how to execute.
enum class Protocol {
  kSingle,         ///< nominal + one seeded noisy run, traces as series
  kFar,            ///< Monte-Carlo false-alarm rate over the detector list
  kNoiseFloor,     ///< per-instant benign residue-norm quantiles
  kRoc,            ///< threshold-scale sweep on a benign/attacked workload
  kTemplateSearch, ///< smallest-successful-magnitude search over templates
  kSynthesis,      ///< run the listed threshold-synthesis algorithms
  kAttack,         ///< Algorithm 1: synthesize a stealthy attack
};

/// Parse-friendly protocol names ("far", "roc", ...).
std::string protocol_name(Protocol protocol);

/// True for the Monte-Carlo protocols whose simulate phase can be shared
/// across an ExperimentRunner::run_group (far, noise_floor, roc).  The
/// others execute standalone per cell — sweep simulation grouping treats
/// their cells as singleton groups.
bool protocol_shares_simulation(Protocol protocol);

/// How one candidate detector of a scenario is obtained.  Declarative so a
/// spec can mix formally synthesized detectors with noise-calibrated and
/// statistical baselines without writing code.
struct DetectorSpec {
  enum class Kind {
    kStatic,           ///< constant threshold at `value`
    kNoiseCalibrated,  ///< `scale` × per-instant noise-floor quantile
    kNoisePeakStatic,  ///< `scale` × noise-floor peak, as a constant
    kSynthPivot,       ///< Algorithm 2 (pivot) variable threshold
    kSynthStepwise,    ///< Algorithm 3 (step-wise) variable threshold
    kSynthRelaxation,  ///< relaxation synthesis (certified, monotone)
    kSynthStatic,      ///< largest provably-safe static threshold
    kChi2,             ///< chi-squared baseline at statistic limit `value`
    kCusum,            ///< CUSUM baseline (drift `drift`, limit `value`)
  };

  Kind kind = Kind::kStatic;
  std::string label;
  double value = 0.0;      ///< static/chi2/cusum limit
  double scale = 1.4;      ///< noise-calibrated headroom multiplier
  double quantile = 0.95;  ///< noise-calibrated quantile
  double drift = 0.02;     ///< CUSUM drift

  /// True for kinds that reduce to a residue ThresholdVector (everything
  /// but chi2/CUSUM) — the ones ROC sweeps and codegen can consume.
  bool threshold_based() const;
  /// True for kinds whose streaming detector consumes only the shared
  /// residual norm (everything but chi2, which needs the residue vector) —
  /// the detector-axis half of the norm-only simulation capability.
  bool norm_streaming() const;
  /// True for kinds that invoke the synthesis pipeline (need a solver).
  bool synthesized() const;

  static DetectorSpec static_threshold(std::string label, double value);
  static DetectorSpec noise_calibrated(std::string label, double scale = 1.4,
                                       double quantile = 0.95);
  /// Constant at `scale` × the largest residue norm observed across the
  /// calibration runs (NoiseFloor::peak; `quantile` only shapes the cached
  /// floor it rides on).
  static DetectorSpec noise_peak_static(std::string label, double scale = 1.0,
                                        double quantile = 0.95);
  static DetectorSpec synthesis(Kind kind, std::string label);
  static DetectorSpec chi2(std::string label, double limit);
  static DetectorSpec cusum(std::string label, double drift, double limit);
};

/// Knobs of the ROC protocol.
struct RocConfig {
  /// Threshold multipliers; empty = detect::log_scales(0.25, 8.0, 13).
  std::vector<double> scales;
  /// Magnitudes for the template attacks in the workload; empty = a
  /// standard spread {0.08, 0.12, 0.18, 0.25, 0.35}.
  std::vector<double> magnitudes;
  /// Additionally synthesize the paper's Fig-1 adversary (most damaging
  /// attack under a loose static threshold) into the attacked side.
  bool include_smt_attack = false;
  /// The loose static threshold, as a multiple of the synthesized safe one.
  double smt_threshold_scale = 2.0;
};

/// One declarative experiment: everything the runner needs, as data.
struct ScenarioSpec {
  std::string name;   ///< registry key, e.g. "vsc/far"
  std::string title;  ///< one-line human description
  models::CaseStudy study;
  Protocol protocol = Protocol::kSingle;

  /// Monte-Carlo knobs.  horizon == 0 resolves to study.horizon; an empty
  /// noise_bounds resolves to study.noise_bounds; num_runs == 0 resolves to
  /// a per-protocol default.
  sim::MonteCarloConfig mc{/*num_runs=*/0, /*horizon=*/0, /*noise_bounds=*/{},
                           /*seed=*/1, /*threads=*/1};

  /// Candidate detectors (FAR rows, ROC entrants, synthesis algorithms...).
  std::vector<DetectorSpec> detectors;

  /// Replaces study.pfc when valid — e.g. an STL contract as the
  /// performance criterion (examples/stl_contract_synthesis).
  synth::Criterion pfc_override;

  double quantile = 0.95;  ///< noise-floor protocol quantile
  RocConfig roc;
  /// Attack-synthesis objective (kAttack, and the far_against_attack /
  /// SMT-workload adversaries).
  synth::AttackObjective objective = synth::AttackObjective::kMaxDeviation;
  synth::SynthesisOptions synthesis;  ///< Algorithm 2/3 options
  /// kFar extra: synthesize the worst stealthy attack and report, per
  /// detector, whether it is caught (the detector trade-off comparison).
  bool far_against_attack = false;
  /// Filter FAR runs through study.pfc (the paper's protocol).
  bool far_pfc_filter = true;
  /// Solver wiring for synthesized pieces: use the simplex fast finder
  /// next to the Z3 certifier, and an optional per-call timeout.
  bool use_finder = true;
  double solver_timeout_seconds = 0.0;  ///< 0 = no cap

  /// Run the simulation through the condensed step kernel
  /// (linalg::StepKernelOptions::condensed): folds the operating point into
  /// the update matrices for throughput, trading the bit-exactness
  /// guarantee for tolerance-equality.  Reports carry a "step_kernel"
  /// summary labelling them non-bit-exact, and the sweep fingerprint
  /// includes this flag so condensed results never share a cache entry
  /// with exact ones.
  bool condensed = false;

  /// Effective values after resolving the study-dependent defaults.
  std::size_t effective_horizon() const;
  linalg::Vector effective_noise_bounds() const;
  std::size_t effective_runs() const;
  synth::Criterion effective_pfc() const;

  /// Multi-line human description (CLI `describe`).
  std::string describe() const;
};

}  // namespace cpsguard::scenario
