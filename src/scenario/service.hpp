// service.hpp — realize a scenario's detectors for streaming service.
//
// ExperimentRunner realizes DetectorSpecs deep inside its batch protocols;
// the serve layer needs exactly that realization (calibration floors,
// synthesis, threshold vectors) but as reusable per-stream factories, not a
// one-shot batch evaluation.  realize_detectors() is that seam: it runs
// the same build pipeline the protocols use — same calibration seed
// derivation, same threshold math, bit-identical detectors — and returns
// the per-detector factories.  make_session_blueprint() packages them as
// the immutable detect::SessionBlueprint every session of a scenario
// shares: realize once (possibly seconds of Monte-Carlo calibration or
// solver time), then open millions of cheap sessions against it.
#pragma once

#include <memory>
#include <vector>

#include "detect/session.hpp"
#include "detect/threshold.hpp"
#include "scenario/spec.hpp"

namespace cpsguard::scenario {

/// One realized candidate detector of a scenario: the resolved spec, the
/// threshold vector (empty for chi2/CUSUM) and the per-stream factory.
struct RealizedDetector {
  DetectorSpec spec;
  detect::ThresholdVector thresholds;
  detect::DetectorFactory factory;
};

/// Realizes `spec`'s detector list exactly as the runner's protocols do
/// (noise calibration on the derived calibration seed, synthesis through
/// the solver stack, same threshold values bit for bit).  Throws
/// util::InvalidArgument on specs without detectors.
std::vector<RealizedDetector> realize_detectors(const ScenarioSpec& spec);

/// Realizes the registered scenario's detectors into a shareable session
/// blueprint keyed by the scenario name.  The blueprint's reference level
/// is derived from the realized detectors (largest threshold / limit), so
/// synthetic load generators can pick residual magnitudes that actually
/// exercise the alarm boundary.
std::shared_ptr<const detect::SessionBlueprint> make_session_blueprint(
    const ScenarioSpec& spec);

/// Convenience: blueprint + one fresh session over it.
detect::Session make_session(const ScenarioSpec& spec);

}  // namespace cpsguard::scenario
