// kalman.hpp — steady-state Kalman filter design.
//
// The paper's observer (Section II):
//   z_k       = y_k - C x_hat_k - D u_k          (residue)
//   x_hat_{k+1} = A x_hat_k + B u_k + L z_k
// with L the steady-state (predict-form) Kalman gain.
#pragma once

#include "control/lti.hpp"
#include "linalg/matrix.hpp"

namespace cpsguard::control {

/// Result of a steady-state Kalman design.
struct KalmanDesign {
  linalg::Matrix gain;        ///< L (n x m), as used in x̂_{k+1} = A x̂ + B u + L z
  linalg::Matrix covariance;  ///< steady-state prediction error covariance P
  linalg::Matrix innovation;  ///< innovation covariance  S = C P C' + R
};

/// Designs the steady-state Kalman gain for `sys` using its Q and R
/// covariances.  Requires R to be positive definite.  Throws
/// util::NumericalError if the filter DARE does not converge (system not
/// detectable).
KalmanDesign design_kalman(const DiscreteLti& sys);

/// Runtime Kalman estimator implementing exactly the paper's update
/// equations; used by the closed-loop simulator and the code generator.
class KalmanFilter {
 public:
  KalmanFilter(const DiscreteLti& sys, linalg::Matrix gain, linalg::Vector initial_estimate);

  /// Residue z = y - C x̂ - D u for the *current* estimate.
  linalg::Vector residue(const linalg::Vector& y, const linalg::Vector& u) const;

  /// Advances the estimate with the given input and residue:
  /// x̂ <- A x̂ + B u + L z.  Returns the new estimate.
  const linalg::Vector& update(const linalg::Vector& u, const linalg::Vector& z);

  const linalg::Vector& estimate() const { return xhat_; }
  const linalg::Matrix& gain() const { return gain_; }

  /// Resets the estimate (e.g. between Monte-Carlo runs).
  void reset(linalg::Vector initial_estimate);

 private:
  linalg::Matrix a_, b_, c_, d_, gain_;
  linalg::Vector xhat_;
};

}  // namespace cpsguard::control
