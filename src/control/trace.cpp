#include "control/trace.hpp"

#include "util/status.hpp"

namespace cpsguard::control {

Signal zero_signal(std::size_t steps, std::size_t dim) {
  return Signal(steps, linalg::Vector(dim));
}

namespace {

void shape(std::vector<linalg::Vector>& series, std::size_t len, std::size_t dim) {
  series.resize(len);
  for (auto& v : series) v.resize(dim);
}

}  // namespace

void Trace::prepare(std::size_t steps, std::size_t n, std::size_t m, std::size_t p) {
  shape(x, steps + 1, n);
  shape(xhat, steps + 1, n);
  shape(u, steps, p);
  shape(y, steps, m);
  shape(z, steps, m);
}

std::vector<double> Trace::residue_norms(Norm norm) const {
  std::vector<double> out;
  out.reserve(z.size());
  for (const auto& zk : z) out.push_back(vector_norm(zk, norm));
  return out;
}

std::size_t Trace::argmax_residue(Norm norm) const {
  util::require(!z.empty(), "Trace::argmax_residue: empty trace");
  std::size_t best = 0;
  double best_v = -1.0;
  for (std::size_t k = 0; k < z.size(); ++k) {
    const double v = vector_norm(z[k], norm);
    if (v > best_v) {
      best_v = v;
      best = k;
    }
  }
  return best;
}

std::vector<double> Trace::state_series(std::size_t state_index) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& xk : x) out.push_back(xk[state_index]);
  return out;
}

std::vector<double> Trace::output_series(std::size_t output_index) const {
  std::vector<double> out;
  out.reserve(y.size());
  for (const auto& yk : y) out.push_back(yk[output_index]);
  return out;
}

std::vector<double> Trace::output_gradient_series(std::size_t output_index) const {
  std::vector<double> out(y.size(), 0.0);
  for (std::size_t k = 1; k < y.size(); ++k)
    out[k] = (y[k][output_index] - y[k - 1][output_index]) / ts;
  return out;
}

}  // namespace cpsguard::control
