// lqr.hpp — infinite-horizon discrete LQR design and reference tracking.
//
// The paper's controller is u_k = -K x̂_k.  For nonzero set points the
// standard offset form u_k = u_ss - K (x̂_k - x_ss) is used; in deviation
// coordinates this is exactly the paper's law.
#pragma once

#include "control/lti.hpp"
#include "linalg/matrix.hpp"

namespace cpsguard::control {

/// Result of an LQR design.
struct LqrDesign {
  linalg::Matrix gain;  ///< K (p x n)
  linalg::Matrix cost;  ///< Riccati solution P
};

/// Solves the infinite-horizon discrete LQR problem with weights
/// (state_cost, input_cost).  Throws util::NumericalError when the DARE
/// iteration does not converge.
LqrDesign design_lqr(const DiscreteLti& sys, const linalg::Matrix& state_cost,
                     const linalg::Matrix& input_cost);

/// Steady-state operating point (x_ss, u_ss) driving the tracked outputs to
/// `reference`: solves [A - I, B; C_t, D_t] [x; u] = [0; reference] in the
/// least-norm sense via normal equations when the system is non-square.
/// `tracked` selects which output rows form C_t/D_t (empty = all outputs).
struct OperatingPoint {
  linalg::Vector x_ss;
  linalg::Vector u_ss;
};

OperatingPoint steady_state_for_reference(const DiscreteLti& sys,
                                          const linalg::Vector& reference,
                                          const std::vector<std::size_t>& tracked = {});

/// Static full-(estimated-)state feedback with offset:
///   u = u_ss - K (x̂ - x_ss).
class TrackingController {
 public:
  TrackingController(linalg::Matrix gain, OperatingPoint op);

  linalg::Vector control(const linalg::Vector& state_estimate) const;

  const linalg::Matrix& gain() const { return gain_; }
  const OperatingPoint& operating_point() const { return op_; }

 private:
  linalg::Matrix gain_;
  OperatingPoint op_;
};

}  // namespace cpsguard::control
