#include "control/lqr.hpp"

#include "linalg/decomp.hpp"
#include "linalg/riccati.hpp"
#include "util/status.hpp"

namespace cpsguard::control {

using linalg::Matrix;
using linalg::Vector;

LqrDesign design_lqr(const DiscreteLti& sys, const Matrix& state_cost,
                     const Matrix& input_cost) {
  util::require(state_cost.rows() == sys.num_states() && state_cost.square(),
                "design_lqr: state cost must be n x n");
  util::require(input_cost.rows() == sys.num_inputs() && input_cost.square(),
                "design_lqr: input cost must be p x p");
  LqrDesign out;
  out.cost = linalg::solve_dare(sys.a, sys.b, state_cost, input_cost);
  const Matrix btp = sys.b.transpose() * out.cost;
  out.gain = linalg::solve(input_cost + btp * sys.b, btp * sys.a);
  return out;
}

OperatingPoint steady_state_for_reference(const DiscreteLti& sys, const Vector& reference,
                                          const std::vector<std::size_t>& tracked) {
  const std::size_t n = sys.num_states();
  const std::size_t p = sys.num_inputs();
  std::vector<std::size_t> rows = tracked;
  if (rows.empty())
    for (std::size_t i = 0; i < sys.num_outputs(); ++i) rows.push_back(i);
  util::require(reference.size() == rows.size(),
                "steady_state_for_reference: reference size must match tracked rows");

  // Build M [x; u] = rhs with M = [A - I, B; C_t, D_t].
  Matrix m(n + rows.size(), n + p);
  Vector rhs(n + rows.size());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m(r, c) = sys.a(r, c) - (r == c ? 1.0 : 0.0);
    for (std::size_t c = 0; c < p; ++c) m(r, n + c) = sys.b(r, c);
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t c = 0; c < n; ++c) m(n + i, c) = sys.c(rows[i], c);
    for (std::size_t c = 0; c < p; ++c) m(n + i, n + c) = sys.d(rows[i], c);
    rhs[n + i] = reference[i];
  }

  Vector sol;
  if (m.rows() == m.cols()) {
    sol = linalg::solve(m, rhs);
  } else {
    // Least-squares / least-norm via normal equations (small systems only).
    const Matrix mt = m.transpose();
    sol = linalg::solve(mt * m + 1e-12 * Matrix::identity(n + p), mt * rhs);
  }
  OperatingPoint op;
  op.x_ss = Vector(n);
  op.u_ss = Vector(p);
  for (std::size_t i = 0; i < n; ++i) op.x_ss[i] = sol[i];
  for (std::size_t i = 0; i < p; ++i) op.u_ss[i] = sol[n + i];
  return op;
}

TrackingController::TrackingController(Matrix gain, OperatingPoint op)
    : gain_(std::move(gain)), op_(std::move(op)) {
  util::require(gain_.cols() == op_.x_ss.size(), "TrackingController: K/x_ss mismatch");
  util::require(gain_.rows() == op_.u_ss.size(), "TrackingController: K/u_ss mismatch");
}

Vector TrackingController::control(const Vector& state_estimate) const {
  return op_.u_ss - gain_ * (state_estimate - op_.x_ss);
}

}  // namespace cpsguard::control
