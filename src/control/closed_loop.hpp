// closed_loop.hpp — the controller implementation under analysis.
//
// This class IS the artifact the paper calls "the control software
// implementation C": the symbolic unroller in src/sym consumes the same
// configuration and reproduces these update equations exactly, so solver
// verdicts apply to the code that actually runs.
//
// Update order per sampling instant k (paper Algorithm 1, lines 4-8):
//   y_k       = C x_k + D u_k + a_k + v_k
//   yhat_k    = C x̂_k + D u_k
//   z_k       = y_k - yhat_k
//   x_{k+1}   = A x_k + B u_k + w_k
//   x̂_{k+1}   = A x̂_k + B u_k + L z_k
//   u_{k+1}   = u_ss - K (x̂_{k+1} - x_ss)
//
// Execution goes through a linalg::StepKernel built once at construction:
// the whole instant runs as one fused pass over matrices packed into a
// contiguous block, dispatched to a fully-unrolled fixed-dimension
// specialization when (n, m, p) matches a registered case-study signature
// and to a generic dynamic-dimension kernel otherwise — bit-identical
// either way (see linalg/step_kernel.hpp for the contract, including the
// opt-in non-bit-identical `condensed` mode).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "control/kalman.hpp"
#include "control/lqr.hpp"
#include "control/lti.hpp"
#include "control/trace.hpp"
#include "linalg/matrix.hpp"
#include "linalg/step_kernel.hpp"

namespace cpsguard::control {

/// Full configuration of one closed loop: plant, observer gain, feedback
/// gain, operating point and initial conditions.
struct LoopConfig {
  DiscreteLti plant;
  linalg::Matrix kalman_gain;      ///< L (n x m)
  linalg::Matrix feedback_gain;    ///< K (p x n)
  OperatingPoint operating_point;  ///< (x_ss, u_ss); zero for regulation
  linalg::Vector x1;               ///< initial plant state
  linalg::Vector xhat1;            ///< initial estimate (paper: 0)
  linalg::Vector u1;               ///< initial input (paper: 0)

  void validate() const;

  /// Convenience: builds a LoopConfig with LQR + Kalman designs, zero
  /// initial conditions and operating point tracking `reference` on the
  /// tracked output rows.
  static LoopConfig design(const DiscreteLti& plant, const linalg::Matrix& state_cost,
                           const linalg::Matrix& input_cost, const linalg::Vector& reference,
                           const std::vector<std::size_t>& tracked_outputs = {});
};

/// Reusable scratch state for ClosedLoop::simulate_into and
/// simulate_norms_into.  One workspace per worker thread; contents are
/// overwritten on every run and carry no information between runs.
struct SimWorkspace {
  linalg::StepState step;  ///< kernel state: x, x̂, u, next buffers, z scratch
};

/// Deterministic closed-loop simulator with attack and noise injection.
class ClosedLoop {
 public:
  explicit ClosedLoop(LoopConfig config);

  /// Kernel-selection override for tests and benchmarks (force the generic
  /// dispatch, opt into the condensed mode).  Results are bit-identical
  /// across dispatches; condensed mode is tolerance-equal only.
  ClosedLoop(LoopConfig config, const linalg::StepKernelOptions& kernel_options);

  /// Runs `steps` sampling instants.  Any of the signals may be null
  /// (treated as zero); non-null signals must have `steps` entries of the
  /// right dimension (attack & measurement noise: m, process noise: n).
  Trace simulate(std::size_t steps, const Signal* attack = nullptr,
                 const Signal* process_noise = nullptr,
                 const Signal* measurement_noise = nullptr) const;

  /// Allocation-free variant: writes the run into `trace` and keeps all
  /// scratch state in `workspace`, both of which are reshaped on entry and
  /// reuse their buffers across calls.  Produces bit-identical results to
  /// simulate() — the batch engine in src/sim relies on that equivalence.
  void simulate_into(Trace& trace, SimWorkspace& workspace, std::size_t steps,
                     const Signal* attack = nullptr,
                     const Signal* process_noise = nullptr,
                     const Signal* measurement_noise = nullptr) const;

  /// Norm-only variant: advances the same kernel but materializes NO trace,
  /// keeping only the residual-norm series — out[i][k] = ||z_k|| under
  /// norms[i], bit-identical to Trace::residue_norms(norms[i]) of the
  /// corresponding simulate_into run.  Memory touched per run drops from
  /// O(steps·(2n+p+2m)) trace storage to O(steps·norms.size()), which is
  /// what lets detector-only Monte-Carlo protocols (detect::FarSimulation,
  /// NoiseFloorSamples, RocResidues) scale to long horizons.
  void simulate_norms_into(SimWorkspace& workspace, std::size_t steps,
                           const std::vector<Norm>& norms,
                           std::vector<std::vector<double>>& out,
                           const Signal* attack = nullptr,
                           const Signal* process_noise = nullptr,
                           const Signal* measurement_noise = nullptr) const;

  const LoopConfig& config() const { return config_; }

  /// The fused per-instant kernel this loop dispatches to.  Immutable and
  /// shared across copies of the loop; per-run state lives in SimWorkspace.
  const linalg::StepKernel& step_kernel() const { return *kernel_; }

  /// Closed-loop state transition matrix of the stacked [x; x̂] system with
  /// u eliminated; used for stability sanity checks in tests.
  linalg::Matrix stacked_closed_loop_matrix() const;

 private:
  void check_signals(std::size_t steps, const Signal* attack,
                     const Signal* process_noise,
                     const Signal* measurement_noise) const;

  LoopConfig config_;
  std::shared_ptr<const linalg::StepKernel> kernel_;
};

}  // namespace cpsguard::control
