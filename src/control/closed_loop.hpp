// closed_loop.hpp — the controller implementation under analysis.
//
// This class IS the artifact the paper calls "the control software
// implementation C": the symbolic unroller in src/sym consumes the same
// configuration and reproduces these update equations exactly, so solver
// verdicts apply to the code that actually runs.
//
// Update order per sampling instant k (paper Algorithm 1, lines 4-8):
//   y_k       = C x_k + D u_k + a_k + v_k
//   yhat_k    = C x̂_k + D u_k
//   z_k       = y_k - yhat_k
//   x_{k+1}   = A x_k + B u_k + w_k
//   x̂_{k+1}   = A x̂_k + B u_k + L z_k
//   u_{k+1}   = u_ss - K (x̂_{k+1} - x_ss)
#pragma once

#include <optional>

#include "control/kalman.hpp"
#include "control/lqr.hpp"
#include "control/lti.hpp"
#include "control/trace.hpp"
#include "linalg/matrix.hpp"

namespace cpsguard::control {

/// Full configuration of one closed loop: plant, observer gain, feedback
/// gain, operating point and initial conditions.
struct LoopConfig {
  DiscreteLti plant;
  linalg::Matrix kalman_gain;      ///< L (n x m)
  linalg::Matrix feedback_gain;    ///< K (p x n)
  OperatingPoint operating_point;  ///< (x_ss, u_ss); zero for regulation
  linalg::Vector x1;               ///< initial plant state
  linalg::Vector xhat1;            ///< initial estimate (paper: 0)
  linalg::Vector u1;               ///< initial input (paper: 0)

  void validate() const;

  /// Convenience: builds a LoopConfig with LQR + Kalman designs, zero
  /// initial conditions and operating point tracking `reference` on the
  /// tracked output rows.
  static LoopConfig design(const DiscreteLti& plant, const linalg::Matrix& state_cost,
                           const linalg::Matrix& input_cost, const linalg::Vector& reference,
                           const std::vector<std::size_t>& tracked_outputs = {});
};

/// Reusable scratch state for ClosedLoop::simulate_into.  One workspace per
/// worker thread; contents are overwritten on every run and carry no
/// information between runs.
struct SimWorkspace {
  linalg::Vector x;      ///< current plant state
  linalg::Vector xhat;   ///< current estimate
  linalg::Vector u;      ///< current input
  linalg::Vector yhat;   ///< predicted output C x̂ + D u
  linalg::Vector xn;     ///< next plant state accumulator
  linalg::Vector xhatn;  ///< next estimate accumulator
  linalg::Vector dev;    ///< x̂ - x_ss
  linalg::Vector kdev;   ///< K (x̂ - x_ss)
};

/// Deterministic closed-loop simulator with attack and noise injection.
class ClosedLoop {
 public:
  explicit ClosedLoop(LoopConfig config);

  /// Runs `steps` sampling instants.  Any of the signals may be null
  /// (treated as zero); non-null signals must have `steps` entries of the
  /// right dimension (attack & measurement noise: m, process noise: n).
  Trace simulate(std::size_t steps, const Signal* attack = nullptr,
                 const Signal* process_noise = nullptr,
                 const Signal* measurement_noise = nullptr) const;

  /// Allocation-free variant: writes the run into `trace` and keeps all
  /// scratch state in `workspace`, both of which are reshaped on entry and
  /// reuse their buffers across calls.  Produces bit-identical results to
  /// simulate() — the batch engine in src/sim relies on that equivalence.
  void simulate_into(Trace& trace, SimWorkspace& workspace, std::size_t steps,
                     const Signal* attack = nullptr,
                     const Signal* process_noise = nullptr,
                     const Signal* measurement_noise = nullptr) const;

  const LoopConfig& config() const { return config_; }

  /// Closed-loop state transition matrix of the stacked [x; x̂] system with
  /// u eliminated; used for stability sanity checks in tests.
  linalg::Matrix stacked_closed_loop_matrix() const;

 private:
  LoopConfig config_;
};

}  // namespace cpsguard::control
