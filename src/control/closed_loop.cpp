#include "control/closed_loop.hpp"

#include "linalg/kernels.hpp"
#include "util/status.hpp"

namespace cpsguard::control {

using linalg::Matrix;
using linalg::Vector;
using util::require;

void LoopConfig::validate() const {
  plant.validate();
  const std::size_t n = plant.num_states();
  const std::size_t m = plant.num_outputs();
  const std::size_t p = plant.num_inputs();
  require(kalman_gain.rows() == n && kalman_gain.cols() == m, "LoopConfig: L must be n x m");
  require(feedback_gain.rows() == p && feedback_gain.cols() == n,
          "LoopConfig: K must be p x n");
  require(operating_point.x_ss.size() == n && operating_point.u_ss.size() == p,
          "LoopConfig: operating point dimension mismatch");
  require(x1.size() == n, "LoopConfig: x1 must have n entries");
  require(xhat1.size() == n, "LoopConfig: xhat1 must have n entries");
  require(u1.size() == p, "LoopConfig: u1 must have p entries");
}

LoopConfig LoopConfig::design(const DiscreteLti& plant, const Matrix& state_cost,
                              const Matrix& input_cost, const Vector& reference,
                              const std::vector<std::size_t>& tracked_outputs) {
  LoopConfig cfg;
  cfg.plant = plant;
  cfg.kalman_gain = design_kalman(plant).gain;
  cfg.feedback_gain = design_lqr(plant, state_cost, input_cost).gain;
  cfg.operating_point = steady_state_for_reference(plant, reference, tracked_outputs);
  cfg.x1 = Vector(plant.num_states());
  cfg.xhat1 = Vector(plant.num_states());
  cfg.u1 = Vector(plant.num_inputs());
  cfg.validate();
  return cfg;
}

ClosedLoop::ClosedLoop(LoopConfig config) : config_(std::move(config)) {
  config_.validate();
}

Trace ClosedLoop::simulate(std::size_t steps, const Signal* attack,
                           const Signal* process_noise,
                           const Signal* measurement_noise) const {
  Trace tr;
  SimWorkspace ws;
  simulate_into(tr, ws, steps, attack, process_noise, measurement_noise);
  return tr;
}

void ClosedLoop::simulate_into(Trace& tr, SimWorkspace& ws, std::size_t steps,
                               const Signal* attack, const Signal* process_noise,
                               const Signal* measurement_noise) const {
  const auto& sys = config_.plant;
  const std::size_t n = sys.num_states();
  const std::size_t m = sys.num_outputs();
  const std::size_t p = sys.num_inputs();
  auto check_signal = [&](const Signal* s, std::size_t dim, const char* what) {
    if (!s) return;
    if (s->size() < steps)
      throw util::InvalidArgument(std::string(what) + ": too few entries");
    for (const auto& v : *s)
      if (v.size() != dim)
        throw util::InvalidArgument(std::string(what) + ": wrong vector dimension");
  };
  check_signal(attack, m, "ClosedLoop: attack signal");
  check_signal(process_noise, n, "ClosedLoop: process noise");
  check_signal(measurement_noise, m, "ClosedLoop: measurement noise");

  tr.ts = sys.ts;
  tr.prepare(steps, n, m, p);
  ws.x = config_.x1;
  ws.xhat = config_.xhat1;
  ws.u = config_.u1;
  ws.yhat.resize(m);
  ws.xn.resize(n);
  ws.xhatn.resize(n);
  ws.dev.resize(n);
  ws.kdev.resize(p);

  const auto& op = config_.operating_point;
  using namespace linalg;  // gemv_into / axpy_into / sub_into
  for (std::size_t k = 0; k < steps; ++k) {
    // y_k = C x + D u (+ attack + measurement noise), written in place.
    Vector& y = tr.y[k];
    gemv_into(1.0, sys.c, ws.x, 0.0, y);
    gemv_into(1.0, sys.d, ws.u, 1.0, y);
    if (attack) axpy_into(1.0, (*attack)[k], y);
    if (measurement_noise) axpy_into(1.0, (*measurement_noise)[k], y);

    // ŷ_k = C x̂ + D u;  z_k = y_k - ŷ_k.
    gemv_into(1.0, sys.c, ws.xhat, 0.0, ws.yhat);
    gemv_into(1.0, sys.d, ws.u, 1.0, ws.yhat);
    sub_into(y, ws.yhat, tr.z[k]);

    tr.x[k] = ws.x;
    tr.xhat[k] = ws.xhat;
    tr.u[k] = ws.u;

    // x_{k+1} = A x + B u (+ process noise).
    gemv_into(1.0, sys.a, ws.x, 0.0, ws.xn);
    gemv_into(1.0, sys.b, ws.u, 1.0, ws.xn);
    if (process_noise) axpy_into(1.0, (*process_noise)[k], ws.xn);
    std::swap(ws.x, ws.xn);

    // x̂_{k+1} = A x̂ + B u + L z.
    gemv_into(1.0, sys.a, ws.xhat, 0.0, ws.xhatn);
    gemv_into(1.0, sys.b, ws.u, 1.0, ws.xhatn);
    gemv_into(1.0, config_.kalman_gain, tr.z[k], 1.0, ws.xhatn);
    std::swap(ws.xhat, ws.xhatn);

    // u_{k+1} = u_ss - K (x̂_{k+1} - x_ss).
    sub_into(ws.xhat, op.x_ss, ws.dev);
    gemv_into(1.0, config_.feedback_gain, ws.dev, 0.0, ws.kdev);
    sub_into(op.u_ss, ws.kdev, ws.u);
  }
  tr.x[steps] = ws.x;
  tr.xhat[steps] = ws.xhat;
}

Matrix ClosedLoop::stacked_closed_loop_matrix() const {
  // Stacked dynamics of [x; x̂] in deviation coordinates with
  // u = -K x̂, y = C x (noise/attack-free):
  //   x+  = A x - B K x̂
  //   x̂+  = L C x + (A - B K - L C) x̂
  const auto& sys = config_.plant;
  const Matrix bk = sys.b * config_.feedback_gain;
  const Matrix lc = config_.kalman_gain * sys.c;
  const std::size_t n = sys.num_states();
  Matrix out(2 * n, 2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      out(r, c) = sys.a(r, c);
      out(r, n + c) = -bk(r, c);
      out(n + r, c) = lc(r, c);
      out(n + r, n + c) = sys.a(r, c) - bk(r, c) - lc(r, c);
    }
  }
  return out;
}

}  // namespace cpsguard::control
