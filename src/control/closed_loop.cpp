#include "control/closed_loop.hpp"

#include "control/norm.hpp"
#include "util/status.hpp"

namespace cpsguard::control {

using linalg::Matrix;
using linalg::Vector;
using util::require;

void LoopConfig::validate() const {
  plant.validate();
  const std::size_t n = plant.num_states();
  const std::size_t m = plant.num_outputs();
  const std::size_t p = plant.num_inputs();
  require(kalman_gain.rows() == n && kalman_gain.cols() == m, "LoopConfig: L must be n x m");
  require(feedback_gain.rows() == p && feedback_gain.cols() == n,
          "LoopConfig: K must be p x n");
  require(operating_point.x_ss.size() == n && operating_point.u_ss.size() == p,
          "LoopConfig: operating point dimension mismatch");
  require(x1.size() == n, "LoopConfig: x1 must have n entries");
  require(xhat1.size() == n, "LoopConfig: xhat1 must have n entries");
  require(u1.size() == p, "LoopConfig: u1 must have p entries");
}

LoopConfig LoopConfig::design(const DiscreteLti& plant, const Matrix& state_cost,
                              const Matrix& input_cost, const Vector& reference,
                              const std::vector<std::size_t>& tracked_outputs) {
  LoopConfig cfg;
  cfg.plant = plant;
  cfg.kalman_gain = design_kalman(plant).gain;
  cfg.feedback_gain = design_lqr(plant, state_cost, input_cost).gain;
  cfg.operating_point = steady_state_for_reference(plant, reference, tracked_outputs);
  cfg.x1 = Vector(plant.num_states());
  cfg.xhat1 = Vector(plant.num_states());
  cfg.u1 = Vector(plant.num_inputs());
  cfg.validate();
  return cfg;
}

ClosedLoop::ClosedLoop(LoopConfig config)
    : ClosedLoop(std::move(config), linalg::StepKernelOptions{}) {}

ClosedLoop::ClosedLoop(LoopConfig config,
                       const linalg::StepKernelOptions& kernel_options)
    : config_(std::move(config)) {
  config_.validate();
  // Pack the update matrices into the fused kernel once; the kernel owns
  // its copies, so config_ may be mutated or moved afterwards without
  // invalidating it.  Dispatch (fixed vs generic) happens here, keyed on
  // (n, m, p) — see linalg/step_kernel.cpp.
  linalg::StepKernelConfig kc;
  kc.n = config_.plant.num_states();
  kc.m = config_.plant.num_outputs();
  kc.p = config_.plant.num_inputs();
  kc.a = config_.plant.a.data();
  kc.b = config_.plant.b.data();
  kc.c = config_.plant.c.data();
  kc.d = config_.plant.d.data();
  kc.l = config_.kalman_gain.data();
  kc.k = config_.feedback_gain.data();
  kc.x_ss = config_.operating_point.x_ss.data();
  kc.u_ss = config_.operating_point.u_ss.data();
  kc.x1 = config_.x1.data();
  kc.xhat1 = config_.xhat1.data();
  kc.u1 = config_.u1.data();
  kernel_ = linalg::make_step_kernel(kc, kernel_options);
}

Trace ClosedLoop::simulate(std::size_t steps, const Signal* attack,
                           const Signal* process_noise,
                           const Signal* measurement_noise) const {
  Trace tr;
  SimWorkspace ws;
  simulate_into(tr, ws, steps, attack, process_noise, measurement_noise);
  return tr;
}

void ClosedLoop::check_signals(std::size_t steps, const Signal* attack,
                               const Signal* process_noise,
                               const Signal* measurement_noise) const {
  const auto& sys = config_.plant;
  const std::size_t n = sys.num_states();
  const std::size_t m = sys.num_outputs();
  auto check_signal = [&](const Signal* s, std::size_t dim, const char* what) {
    if (!s) return;
    if (s->size() < steps)
      throw util::InvalidArgument(std::string(what) + ": too few entries");
    for (const auto& v : *s)
      if (v.size() != dim)
        throw util::InvalidArgument(std::string(what) + ": wrong vector dimension");
  };
  check_signal(attack, m, "ClosedLoop: attack signal");
  check_signal(process_noise, n, "ClosedLoop: process noise");
  check_signal(measurement_noise, m, "ClosedLoop: measurement noise");
}

void ClosedLoop::simulate_into(Trace& tr, SimWorkspace& ws, std::size_t steps,
                               const Signal* attack, const Signal* process_noise,
                               const Signal* measurement_noise) const {
  const auto& sys = config_.plant;
  const std::size_t n = sys.num_states();
  const std::size_t m = sys.num_outputs();
  const std::size_t p = sys.num_inputs();
  check_signals(steps, attack, process_noise, measurement_noise);

  tr.ts = sys.ts;
  tr.prepare(steps, n, m, p);
  linalg::StepState& s = ws.step;
  kernel_->begin_run(s);

  for (std::size_t k = 0; k < steps; ++k) {
    // Record the pre-update state, then run the fused instant: y_k and z_k
    // are written straight into the trace, x/x̂/u advance in the workspace.
    for (std::size_t i = 0; i < n; ++i) tr.x[k][i] = s.x[i];
    for (std::size_t i = 0; i < n; ++i) tr.xhat[k][i] = s.xhat[i];
    for (std::size_t i = 0; i < p; ++i) tr.u[k][i] = s.u[i];
    kernel_->step(s, attack ? (*attack)[k].data() : nullptr,
                  process_noise ? (*process_noise)[k].data() : nullptr,
                  measurement_noise ? (*measurement_noise)[k].data() : nullptr,
                  tr.y[k].data(), tr.z[k].data());
  }
  for (std::size_t i = 0; i < n; ++i) tr.x[steps][i] = s.x[i];
  for (std::size_t i = 0; i < n; ++i) tr.xhat[steps][i] = s.xhat[i];
}

void ClosedLoop::simulate_norms_into(SimWorkspace& ws, std::size_t steps,
                                     const std::vector<Norm>& norms,
                                     std::vector<std::vector<double>>& out,
                                     const Signal* attack,
                                     const Signal* process_noise,
                                     const Signal* measurement_noise) const {
  require(!norms.empty(), "simulate_norms_into: need at least one norm");
  const std::size_t m = config_.plant.num_outputs();
  check_signals(steps, attack, process_noise, measurement_noise);

  out.resize(norms.size());
  for (auto& series : out) series.resize(steps);
  linalg::StepState& s = ws.step;
  kernel_->begin_run(s);

  for (std::size_t k = 0; k < steps; ++k) {
    // z_k lands in the workspace scratch row; only its norms survive.
    kernel_->step(s, attack ? (*attack)[k].data() : nullptr,
                  process_noise ? (*process_noise)[k].data() : nullptr,
                  measurement_noise ? (*measurement_noise)[k].data() : nullptr,
                  /*y_out=*/nullptr, /*z_out=*/nullptr);
    for (std::size_t j = 0; j < norms.size(); ++j)
      out[j][k] = vector_norm(s.z, m, norms[j]);
  }
}

Matrix ClosedLoop::stacked_closed_loop_matrix() const {
  // Stacked dynamics of [x; x̂] in deviation coordinates with
  // u = -K x̂, y = C x (noise/attack-free):
  //   x+  = A x - B K x̂
  //   x̂+  = L C x + (A - B K - L C) x̂
  const auto& sys = config_.plant;
  const Matrix bk = sys.b * config_.feedback_gain;
  const Matrix lc = config_.kalman_gain * sys.c;
  const std::size_t n = sys.num_states();
  Matrix out(2 * n, 2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      out(r, c) = sys.a(r, c);
      out(r, n + c) = -bk(r, c);
      out(n + r, c) = lc(r, c);
      out(n + r, n + c) = sys.a(r, c) - bk(r, c) - lc(r, c);
    }
  }
  return out;
}

}  // namespace cpsguard::control
