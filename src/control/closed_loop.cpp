#include "control/closed_loop.hpp"

#include "util/status.hpp"

namespace cpsguard::control {

using linalg::Matrix;
using linalg::Vector;
using util::require;

void LoopConfig::validate() const {
  plant.validate();
  const std::size_t n = plant.num_states();
  const std::size_t m = plant.num_outputs();
  const std::size_t p = plant.num_inputs();
  require(kalman_gain.rows() == n && kalman_gain.cols() == m, "LoopConfig: L must be n x m");
  require(feedback_gain.rows() == p && feedback_gain.cols() == n,
          "LoopConfig: K must be p x n");
  require(operating_point.x_ss.size() == n && operating_point.u_ss.size() == p,
          "LoopConfig: operating point dimension mismatch");
  require(x1.size() == n, "LoopConfig: x1 must have n entries");
  require(xhat1.size() == n, "LoopConfig: xhat1 must have n entries");
  require(u1.size() == p, "LoopConfig: u1 must have p entries");
}

LoopConfig LoopConfig::design(const DiscreteLti& plant, const Matrix& state_cost,
                              const Matrix& input_cost, const Vector& reference,
                              const std::vector<std::size_t>& tracked_outputs) {
  LoopConfig cfg;
  cfg.plant = plant;
  cfg.kalman_gain = design_kalman(plant).gain;
  cfg.feedback_gain = design_lqr(plant, state_cost, input_cost).gain;
  cfg.operating_point = steady_state_for_reference(plant, reference, tracked_outputs);
  cfg.x1 = Vector(plant.num_states());
  cfg.xhat1 = Vector(plant.num_states());
  cfg.u1 = Vector(plant.num_inputs());
  cfg.validate();
  return cfg;
}

ClosedLoop::ClosedLoop(LoopConfig config) : config_(std::move(config)) {
  config_.validate();
}

Trace ClosedLoop::simulate(std::size_t steps, const Signal* attack,
                           const Signal* process_noise,
                           const Signal* measurement_noise) const {
  const auto& sys = config_.plant;
  const std::size_t n = sys.num_states();
  const std::size_t m = sys.num_outputs();
  auto check_signal = [&](const Signal* s, std::size_t dim, const char* what) {
    if (!s) return;
    require(s->size() >= steps, std::string(what) + ": too few entries");
    for (const auto& v : *s)
      require(v.size() == dim, std::string(what) + ": wrong vector dimension");
  };
  check_signal(attack, m, "ClosedLoop: attack signal");
  check_signal(process_noise, n, "ClosedLoop: process noise");
  check_signal(measurement_noise, m, "ClosedLoop: measurement noise");

  Trace tr;
  tr.ts = sys.ts;
  tr.x.reserve(steps + 1);
  tr.xhat.reserve(steps + 1);
  tr.u.reserve(steps);
  tr.y.reserve(steps);
  tr.z.reserve(steps);

  Vector x = config_.x1;
  Vector xhat = config_.xhat1;
  Vector u = config_.u1;
  const auto& op = config_.operating_point;
  for (std::size_t k = 0; k < steps; ++k) {
    Vector y = sys.c * x + sys.d * u;
    if (attack) y += (*attack)[k];
    if (measurement_noise) y += (*measurement_noise)[k];
    const Vector yhat = sys.c * xhat + sys.d * u;
    const Vector z = y - yhat;

    tr.x.push_back(x);
    tr.xhat.push_back(xhat);
    tr.u.push_back(u);
    tr.y.push_back(y);
    tr.z.push_back(z);

    Vector xn = sys.a * x + sys.b * u;
    if (process_noise) xn += (*process_noise)[k];
    x = std::move(xn);
    xhat = sys.a * xhat + sys.b * u + config_.kalman_gain * z;
    u = op.u_ss - config_.feedback_gain * (xhat - op.x_ss);
  }
  tr.x.push_back(x);
  tr.xhat.push_back(xhat);
  return tr;
}

Matrix ClosedLoop::stacked_closed_loop_matrix() const {
  // Stacked dynamics of [x; x̂] in deviation coordinates with
  // u = -K x̂, y = C x (noise/attack-free):
  //   x+  = A x - B K x̂
  //   x̂+  = L C x + (A - B K - L C) x̂
  const auto& sys = config_.plant;
  const Matrix bk = sys.b * config_.feedback_gain;
  const Matrix lc = config_.kalman_gain * sys.c;
  const std::size_t n = sys.num_states();
  Matrix out(2 * n, 2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      out(r, c) = sys.a(r, c);
      out(r, n + c) = -bk(r, c);
      out(n + r, c) = lc(r, c);
      out(n + r, n + c) = sys.a(r, c) - bk(r, c) - lc(r, c);
    }
  }
  return out;
}

}  // namespace cpsguard::control
