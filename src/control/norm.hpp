// norm.hpp — residue norm selection.
//
// The paper writes ||z_k|| without fixing a norm.  The library is
// norm-parametric: L-infinity keeps the SMT encoding exactly linear (and is
// the default for synthesis), while L2/L1 are available for runtime
// detection and Monte-Carlo evaluation.
#pragma once

#include <string>

#include "linalg/matrix.hpp"

namespace cpsguard::control {

enum class Norm {
  kInf,  ///< max |z_i| — linear encoding, synthesis default
  kOne,  ///< sum |z_i| — linear encoding
  kTwo,  ///< Euclidean — runtime only (nonlinear in the SMT encoding)
};

/// Applies the selected norm to `v`.
double vector_norm(const linalg::Vector& v, Norm norm);

/// Same norms over a raw span (the recorded-residue hot path).  Identical
/// operation order to the Vector overload, so the two faces are
/// bit-identical.
double vector_norm(const double* data, std::size_t n, Norm norm);

/// Human-readable norm name ("Linf", "L1", "L2").
std::string norm_name(Norm norm);

}  // namespace cpsguard::control
