#include "control/kalman.hpp"

#include "linalg/decomp.hpp"
#include "linalg/riccati.hpp"
#include "util/status.hpp"

namespace cpsguard::control {

using linalg::Matrix;
using linalg::Vector;

KalmanDesign design_kalman(const DiscreteLti& sys) {
  sys.validate();
  // Estimation DARE is the control DARE on the dual pair (A', C').
  const Matrix p = linalg::solve_dare(sys.a.transpose(), sys.c.transpose(), sys.q, sys.r);
  KalmanDesign out;
  out.covariance = p;
  out.innovation = sys.c * p * sys.c.transpose() + sys.r;
  // L = A P C' (C P C' + R)^{-1}  (predict-form gain, matching x̂_{k+1} = Ax̂+Bu+Lz).
  out.gain = linalg::solve(out.innovation.transpose(), (sys.a * p * sys.c.transpose()).transpose())
                 .transpose();
  return out;
}

KalmanFilter::KalmanFilter(const DiscreteLti& sys, Matrix gain, Vector initial_estimate)
    : a_(sys.a), b_(sys.b), c_(sys.c), d_(sys.d), gain_(std::move(gain)),
      xhat_(std::move(initial_estimate)) {
  util::require(gain_.rows() == sys.num_states() && gain_.cols() == sys.num_outputs(),
                "KalmanFilter: gain must be n x m");
  util::require(xhat_.size() == sys.num_states(),
                "KalmanFilter: initial estimate must have n entries");
}

Vector KalmanFilter::residue(const Vector& y, const Vector& u) const {
  return y - c_ * xhat_ - d_ * u;
}

const Vector& KalmanFilter::update(const Vector& u, const Vector& z) {
  xhat_ = a_ * xhat_ + b_ * u + gain_ * z;
  return xhat_;
}

void KalmanFilter::reset(Vector initial_estimate) {
  util::require(initial_estimate.size() == xhat_.size(), "KalmanFilter::reset: bad size");
  xhat_ = std::move(initial_estimate);
}

}  // namespace cpsguard::control
