// trace.hpp — closed-loop execution records.
#pragma once

#include <cstddef>
#include <vector>

#include "control/norm.hpp"
#include "linalg/matrix.hpp"

namespace cpsguard::control {

/// A time-indexed sequence of vectors (attack signals, noise signals...).
using Signal = std::vector<linalg::Vector>;

/// All-zero signal of `steps` entries of dimension `dim`.
Signal zero_signal(std::size_t steps, std::size_t dim);

/// Record of one closed-loop run over T sampling instants.
///
/// Indexing follows the paper's Algorithm 1: entries k = 0..T-1 correspond
/// to sampling instants 1..T; `x` and `xhat` additionally carry the
/// post-update values x_{T+1}, x̂_{T+1} at index T.
struct Trace {
  std::vector<linalg::Vector> x;     ///< plant states (length T+1)
  std::vector<linalg::Vector> xhat;  ///< estimates (length T+1)
  std::vector<linalg::Vector> u;     ///< control inputs applied at each instant (length T)
  std::vector<linalg::Vector> y;     ///< (possibly attacked) measurements (length T)
  std::vector<linalg::Vector> z;     ///< residues (length T)
  double ts = 0.0;                   ///< sampling period [s]

  /// Number of sampling instants T.
  std::size_t steps() const { return z.size(); }

  /// Shapes the record for a run of `steps` instants of an (n states,
  /// m outputs, p inputs) loop.  Existing vector allocations are kept, so a
  /// Trace handed repeatedly to ClosedLoop::simulate_into settles into a
  /// steady state with no per-run allocation.
  void prepare(std::size_t steps, std::size_t n, std::size_t m, std::size_t p);

  /// ||z_k|| for all k under the chosen norm (length T).
  std::vector<double> residue_norms(Norm norm) const;

  /// Index k (0-based) of the maximum residue norm.  Requires steps() > 0.
  std::size_t argmax_residue(Norm norm) const;

  /// One selected component of the plant state over time (length T+1).
  std::vector<double> state_series(std::size_t state_index) const;

  /// One selected component of the measurements over time (length T).
  std::vector<double> output_series(std::size_t output_index) const;

  /// Per-sample gradient (first difference / ts) of an output component;
  /// entry k is (y_k - y_{k-1}) / ts with entry 0 = 0.
  std::vector<double> output_gradient_series(std::size_t output_index) const;
};

}  // namespace cpsguard::control
