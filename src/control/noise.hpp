// noise.hpp — noise signal generators for simulation and the FAR protocol.
#pragma once

#include "control/trace.hpp"
#include "linalg/matrix.hpp"
#include "util/random.hpp"

namespace cpsguard::control {

/// Gaussian noise with per-component standard deviations.
Signal gaussian_signal(util::Rng& rng, std::size_t steps,
                       const linalg::Vector& stddev);

/// Gaussian noise shaped by a covariance matrix (samples L*g with L the
/// Cholesky factor of `covariance`).
Signal gaussian_signal_cov(util::Rng& rng, std::size_t steps,
                           const linalg::Matrix& covariance);

/// Bounded uniform noise in [-bound_i, +bound_i] per component — the
/// paper's FAR protocol draws "each value sampled from a suitably small
/// range".
Signal bounded_uniform_signal(util::Rng& rng, std::size_t steps,
                              const linalg::Vector& bounds);

/// Allocation-free variant for the batch engine: reshapes `out` and reuses
/// its buffers across calls.  Draws the same values as
/// bounded_uniform_signal for the same generator state.
void bounded_uniform_signal_into(util::Rng& rng, std::size_t steps,
                                 const linalg::Vector& bounds, Signal& out);

/// Lane-interleaved variant for the SoA batch kernel: draws the exact same
/// values as bounded_uniform_signal for the same generator state, writing
/// value (k, i) to out_soa[(k*dim + i)*width + lane].  out_soa must hold
/// steps * bounds.size() * width doubles.
void bounded_uniform_soa_into(util::Rng& rng, std::size_t steps,
                              const linalg::Vector& bounds, double* out_soa,
                              std::size_t width, std::size_t lane);

}  // namespace cpsguard::control
