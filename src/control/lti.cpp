#include "control/lti.hpp"

#include "linalg/decomp.hpp"
#include "linalg/expm.hpp"
#include "util/status.hpp"

namespace cpsguard::control {

using util::require;

void ContinuousLti::validate() const {
  require(a.square(), "ContinuousLti: A must be square");
  require(b.rows() == a.rows(), "ContinuousLti: B row count must match A");
  require(c.cols() == a.rows(), "ContinuousLti: C column count must match A");
  require(d.rows() == c.rows() && d.cols() == b.cols(),
          "ContinuousLti: D must be outputs x inputs");
}

void DiscreteLti::validate() const {
  require(a.square(), "DiscreteLti: A must be square");
  require(b.rows() == a.rows(), "DiscreteLti: B row count must match A");
  require(c.cols() == a.rows(), "DiscreteLti: C column count must match A");
  require(d.rows() == c.rows() && d.cols() == b.cols(),
          "DiscreteLti: D must be outputs x inputs");
  require(ts > 0.0, "DiscreteLti: sampling period must be positive");
  require(q.rows() == a.rows() && q.cols() == a.rows(),
          "DiscreteLti: Q must be n x n");
  require(r.rows() == c.rows() && r.cols() == c.rows(),
          "DiscreteLti: R must be m x m");
}

bool DiscreteLti::stable() const { return linalg::spectral_radius(a) < 1.0; }

DiscreteLti c2d(const ContinuousLti& sys, double ts) {
  sys.validate();
  require(ts > 0.0, "c2d: sampling period must be positive");
  const std::size_t n = sys.num_states();
  const std::size_t p = sys.num_inputs();

  // Augmented exponential: expm([[A, B], [0, 0]] * ts) = [[Ad, Bd], [0, I]].
  linalg::Matrix aug(n + p, n + p);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) aug(r, c) = sys.a(r, c) * ts;
    for (std::size_t c = 0; c < p; ++c) aug(r, n + c) = sys.b(r, c) * ts;
  }
  const linalg::Matrix e = linalg::expm(aug);

  DiscreteLti out;
  out.a = linalg::Matrix(n, n);
  out.b = linalg::Matrix(n, p);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) out.a(r, c) = e(r, c);
    for (std::size_t c = 0; c < p; ++c) out.b(r, c) = e(r, n + c);
  }
  out.c = sys.c;
  out.d = sys.d;
  out.ts = ts;
  out.q = linalg::Matrix(n, n);
  out.r = linalg::Matrix(sys.num_outputs(), sys.num_outputs());
  return out;
}

}  // namespace cpsguard::control
