#include "control/norm.hpp"

#include <cmath>

#include "util/status.hpp"

namespace cpsguard::control {

double vector_norm(const linalg::Vector& v, Norm norm) {
  switch (norm) {
    case Norm::kInf: return v.norm_inf();
    case Norm::kOne: return v.norm1();
    case Norm::kTwo: return v.norm2();
  }
  throw util::InvalidArgument("vector_norm: unknown norm");
}

double vector_norm(const double* data, std::size_t n, Norm norm) {
  double acc = 0.0;
  switch (norm) {
    case Norm::kInf:
      for (std::size_t i = 0; i < n; ++i) acc = std::max(acc, std::abs(data[i]));
      return acc;
    case Norm::kOne:
      for (std::size_t i = 0; i < n; ++i) acc += std::abs(data[i]);
      return acc;
    case Norm::kTwo:
      for (std::size_t i = 0; i < n; ++i) acc += data[i] * data[i];
      return std::sqrt(acc);
  }
  throw util::InvalidArgument("vector_norm: unknown norm");
}

std::string norm_name(Norm norm) {
  switch (norm) {
    case Norm::kInf: return "Linf";
    case Norm::kOne: return "L1";
    case Norm::kTwo: return "L2";
  }
  return "?";
}

}  // namespace cpsguard::control
