#include "control/norm.hpp"

#include "util/status.hpp"

namespace cpsguard::control {

double vector_norm(const linalg::Vector& v, Norm norm) {
  switch (norm) {
    case Norm::kInf: return v.norm_inf();
    case Norm::kOne: return v.norm1();
    case Norm::kTwo: return v.norm2();
  }
  throw util::InvalidArgument("vector_norm: unknown norm");
}

std::string norm_name(Norm norm) {
  switch (norm) {
    case Norm::kInf: return "Linf";
    case Norm::kOne: return "L1";
    case Norm::kTwo: return "L2";
  }
  return "?";
}

}  // namespace cpsguard::control
