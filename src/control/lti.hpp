// lti.hpp — linear time-invariant plant models.
//
// The paper's plant (Section II):
//   x_{k+1} = A x_k + B u_k + w_k
//   y_k     = C x_k + D u_k + v_k
// with w ~ N(0, Q), v ~ N(0, R).  Continuous-time models are discretized by
// zero-order hold before use.
#pragma once

#include <cstddef>
#include <string>

#include "linalg/matrix.hpp"

namespace cpsguard::control {

/// Continuous-time LTI model  dx/dt = A x + B u,  y = C x + D u.
struct ContinuousLti {
  linalg::Matrix a, b, c, d;

  std::size_t num_states() const { return a.rows(); }
  std::size_t num_inputs() const { return b.cols(); }
  std::size_t num_outputs() const { return c.rows(); }

  /// Validates shape consistency; throws util::InvalidArgument otherwise.
  void validate() const;
};

/// Discrete-time LTI model with sampling period and noise covariances.
struct DiscreteLti {
  linalg::Matrix a, b, c, d;
  double ts = 0.0;     ///< sampling period [s]
  linalg::Matrix q;    ///< process noise covariance (n x n)
  linalg::Matrix r;    ///< measurement noise covariance (m x m)

  std::size_t num_states() const { return a.rows(); }
  std::size_t num_inputs() const { return b.cols(); }
  std::size_t num_outputs() const { return c.rows(); }

  /// Validates shape consistency; throws util::InvalidArgument otherwise.
  void validate() const;

  /// True when rho(A) < 1 (open-loop stability).
  bool stable() const;
};

/// Zero-order-hold discretization with sampling period `ts`:
///   Ad = e^{A ts},  Bd = (integral_0^ts e^{A tau} dtau) B,
/// computed in one matrix exponential of the augmented [[A, B], [0, 0]].
/// Noise covariances default to zero and can be set afterwards.
DiscreteLti c2d(const ContinuousLti& sys, double ts);

}  // namespace cpsguard::control
