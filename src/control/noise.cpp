#include "control/noise.hpp"

#include "linalg/decomp.hpp"

namespace cpsguard::control {

using linalg::Matrix;
using linalg::Vector;

Signal gaussian_signal(util::Rng& rng, std::size_t steps, const Vector& stddev) {
  Signal out;
  out.reserve(steps);
  for (std::size_t k = 0; k < steps; ++k) {
    Vector v(stddev.size());
    for (std::size_t i = 0; i < stddev.size(); ++i) v[i] = rng.gaussian(0.0, stddev[i]);
    out.push_back(std::move(v));
  }
  return out;
}

Signal gaussian_signal_cov(util::Rng& rng, std::size_t steps, const Matrix& covariance) {
  const Matrix l = linalg::cholesky(covariance);
  Signal out;
  out.reserve(steps);
  for (std::size_t k = 0; k < steps; ++k) {
    Vector g(covariance.rows());
    for (std::size_t i = 0; i < g.size(); ++i) g[i] = rng.gaussian();
    out.push_back(l * g);
  }
  return out;
}

Signal bounded_uniform_signal(util::Rng& rng, std::size_t steps, const Vector& bounds) {
  Signal out;
  bounded_uniform_signal_into(rng, steps, bounds, out);
  return out;
}

void bounded_uniform_signal_into(util::Rng& rng, std::size_t steps,
                                 const Vector& bounds, Signal& out) {
  out.resize(steps);
  for (std::size_t k = 0; k < steps; ++k) {
    Vector& v = out[k];
    v.resize(bounds.size());
    for (std::size_t i = 0; i < bounds.size(); ++i)
      v[i] = rng.uniform(-bounds[i], bounds[i]);
  }
}

void bounded_uniform_soa_into(util::Rng& rng, std::size_t steps,
                              const Vector& bounds, double* out_soa,
                              std::size_t width, std::size_t lane) {
  // The same draws in the same order as bounded_uniform_signal_into —
  // value (k, i) lands at out_soa[(k*dim + i)*width + lane] instead of
  // out[k][i], skipping the row-of-vectors staging entirely.
  const std::size_t dim = bounds.size();
  for (std::size_t k = 0; k < steps; ++k)
    for (std::size_t i = 0; i < dim; ++i)
      out_soa[(k * dim + i) * width + lane] = rng.uniform(-bounds[i], bounds[i]);
}

}  // namespace cpsguard::control
