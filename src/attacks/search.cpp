#include "attacks/search.hpp"

#include <cmath>

#include "control/norm.hpp"
#include "sim/batch.hpp"
#include "util/status.hpp"

namespace cpsguard::attacks {

using control::Signal;
using control::Trace;

namespace {

// Simulates one magnitude into the caller's scratch trace and reports
// whether pfc breaks; traces are swapped (not copied) when a new best
// violator is found, so the whole search reuses two trace buffers.
bool probe(const control::ClosedLoop& loop, const synth::Criterion& pfc,
           std::size_t horizon, const AttackTemplate& tmpl, double magnitude,
           Trace& trace, control::SimWorkspace& ws) {
  const std::size_t dim = loop.config().plant.num_outputs();
  const Signal attack = tmpl.build(magnitude, horizon, dim);
  loop.simulate_into(trace, ws, horizon, &attack);
  return !pfc.satisfied(trace);
}

TemplateResult search_one(const control::ClosedLoop& loop, const synth::Criterion& pfc,
                          const monitor::MonitorSet& monitors,
                          const detect::ResidueDetector* detector, std::size_t horizon,
                          const AttackTemplate& tmpl, const SearchOptions& options,
                          Trace& scratch, Trace& best_trace,
                          control::SimWorkspace& ws) {
  TemplateResult r;
  r.name = tmpl.name;

  // Exponential growth to find a violating magnitude.
  double hi = options.initial_magnitude;
  bool found = false;
  while (hi <= options.max_magnitude) {
    if (probe(loop, pfc, horizon, tmpl, hi, scratch, ws)) {
      found = true;
      break;
    }
    hi *= 2.0;
  }
  if (!found) return r;
  std::swap(best_trace, scratch);

  // Bisection down to the smallest violating magnitude.  Template
  // families need not be perfectly monotone (feedback can fold the
  // deviation back into the band), so keep the smallest *observed*
  // violator rather than trusting the midpoint predicate globally.
  double lo = hi / 2.0;
  double best = hi;
  for (std::size_t i = 0; i < options.bisection_steps; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (probe(loop, pfc, horizon, tmpl, mid, scratch, ws)) {
      hi = mid;
      if (mid < best) {
        best = mid;
        std::swap(best_trace, scratch);
      }
    } else {
      lo = mid;
    }
    if (hi - lo <= 1e-6 * hi) break;
  }

  r.min_violating_magnitude = best;
  r.caught_by_monitors = !monitors.stealthy(best_trace);
  r.caught_by_detector = detector != nullptr && detector->triggered(best_trace);
  const std::vector<double> norms = best_trace.residue_norms(
      detector ? detector->norm() : control::Norm::kInf);
  for (double v : norms) r.residue_peak = std::max(r.residue_peak, v);
  r.deviation = std::abs(pfc.deviation(best_trace));
  return r;
}

}  // namespace

std::vector<TemplateResult> search_templates(
    const control::ClosedLoop& loop, const synth::Criterion& pfc,
    const monitor::MonitorSet& monitors, const detect::ResidueDetector* detector,
    std::size_t horizon, const std::vector<AttackTemplate>& templates,
    const SearchOptions& options) {
  util::require(options.initial_magnitude > 0.0 &&
                    options.max_magnitude > options.initial_magnitude,
                "search_templates: bad magnitude bracket");

  // Each template's bracket + bisection is independent of the others, so
  // fan the templates out and key results by template index.
  std::vector<TemplateResult> results(templates.size());
  const sim::BatchRunner runner(options.threads);
  struct Scratch {
    Trace trace, best;
    control::SimWorkspace workspace;
  };
  std::vector<Scratch> scratch(runner.threads());
  runner.for_each(templates.size(), [&](std::size_t idx, std::size_t slot) {
    Scratch& s = scratch[slot];
    results[idx] = search_one(loop, pfc, monitors, detector, horizon,
                              templates[idx], options, s.trace, s.best,
                              s.workspace);
  });
  return results;
}

}  // namespace cpsguard::attacks
