#include "attacks/search.hpp"

#include <cmath>

#include "control/norm.hpp"
#include "util/status.hpp"

namespace cpsguard::attacks {

using control::Signal;
using control::Trace;

namespace {

struct Probe {
  bool violates = false;
  Trace trace;
};

Probe probe(const control::ClosedLoop& loop, const synth::Criterion& pfc,
            std::size_t horizon, const AttackTemplate& tmpl, double magnitude) {
  const std::size_t dim = loop.config().plant.num_outputs();
  const Signal attack = tmpl.build(magnitude, horizon, dim);
  Probe out;
  out.trace = loop.simulate(horizon, &attack);
  out.violates = !pfc.satisfied(out.trace);
  return out;
}

}  // namespace

std::vector<TemplateResult> search_templates(
    const control::ClosedLoop& loop, const synth::Criterion& pfc,
    const monitor::MonitorSet& monitors, const detect::ResidueDetector* detector,
    std::size_t horizon, const std::vector<AttackTemplate>& templates,
    const SearchOptions& options) {
  util::require(options.initial_magnitude > 0.0 &&
                    options.max_magnitude > options.initial_magnitude,
                "search_templates: bad magnitude bracket");

  std::vector<TemplateResult> results;
  results.reserve(templates.size());
  for (const AttackTemplate& tmpl : templates) {
    TemplateResult r;
    r.name = tmpl.name;

    // Exponential growth to find a violating magnitude.
    double hi = options.initial_magnitude;
    Probe hit;
    bool found = false;
    while (hi <= options.max_magnitude) {
      hit = probe(loop, pfc, horizon, tmpl, hi);
      if (hit.violates) {
        found = true;
        break;
      }
      hi *= 2.0;
    }
    if (!found) {
      results.push_back(std::move(r));
      continue;
    }

    // Bisection down to the smallest violating magnitude.  Template
    // families need not be perfectly monotone (feedback can fold the
    // deviation back into the band), so keep the smallest *observed*
    // violator rather than trusting the midpoint predicate globally.
    double lo = hi / 2.0;
    double best = hi;
    Probe best_probe = hit;
    for (std::size_t i = 0; i < options.bisection_steps; ++i) {
      const double mid = 0.5 * (lo + hi);
      const Probe p = probe(loop, pfc, horizon, tmpl, mid);
      if (p.violates) {
        hi = mid;
        if (mid < best) {
          best = mid;
          best_probe = p;
        }
      } else {
        lo = mid;
      }
      if (hi - lo <= 1e-6 * hi) break;
    }

    r.min_violating_magnitude = best;
    r.caught_by_monitors = !monitors.stealthy(best_probe.trace);
    r.caught_by_detector = detector != nullptr && detector->triggered(best_probe.trace);
    const std::vector<double> norms =
        best_probe.trace.residue_norms(detector ? detector->norm()
                                                : control::Norm::kInf);
    for (double v : norms) r.residue_peak = std::max(r.residue_peak, v);
    r.deviation = std::abs(pfc.deviation(best_probe.trace));
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace cpsguard::attacks
