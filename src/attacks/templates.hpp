// templates.hpp — the attack shapes of the FDI literature, as baselines.
//
// The paper's Algorithm 1 synthesizes attacks with an SMT solver.  The
// obvious cheaper alternative — and the de-facto evaluation standard of
// the residue-detector literature (Mo & Sinopoli; Liu et al.) — is a small
// library of parametric attack shapes scaled until they succeed.  This
// module provides those shapes plus a magnitude search, so benches can
// quantify what formal synthesis buys over template attacks (template
// attacks need much larger amplitudes to defeat pfc, and usually trip the
// detector first).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "control/trace.hpp"
#include "linalg/matrix.hpp"

namespace cpsguard::attacks {

/// A parametric attack family: magnitude -> concrete attack signal.
/// Implementations must be monotone in spirit (larger magnitude, larger
/// injected values) for the magnitude search to be meaningful.
struct AttackTemplate {
  std::string name;
  /// Builds the attack for `steps` instants on `dim` sensor channels.
  std::function<control::Signal(double magnitude, std::size_t steps, std::size_t dim)>
      build;
};

/// Constant bias on the selected channels: a_k[i] = magnitude * mask[i].
/// The classic sensor-offset FDI.
AttackTemplate bias_attack(const linalg::Vector& channel_mask);

/// Linear ramp: a_k[i] = magnitude * mask[i] * (k+1)/T.  Slow drift shaped
/// to respect gradient monitors.
AttackTemplate ramp_attack(const linalg::Vector& channel_mask);

/// Late surge: zero until `start_fraction` of the horizon, then constant
/// magnitude — the paper's "smaller fault injection at the later stage"
/// scenario.
AttackTemplate surge_attack(const linalg::Vector& channel_mask, double start_fraction);

/// Geometric attack: a_k[i] = magnitude * mask[i] * growth^(k - T + 1),
/// i.e. exponentially growing toward the end of the horizon (Mo &
/// Sinopoli's stealthy strategy shape).  growth > 1.
AttackTemplate geometric_attack(const linalg::Vector& channel_mask, double growth);

/// Intermittent bursts: `on` instants at magnitude, `off` instants of
/// silence, repeating — probes dead-zone monitoring.
AttackTemplate burst_attack(const linalg::Vector& channel_mask, std::size_t on,
                            std::size_t off);

/// All templates above with a default parametrization on `dim` channels
/// (mask = all ones).
std::vector<AttackTemplate> standard_library(std::size_t dim, std::size_t horizon);

}  // namespace cpsguard::attacks
