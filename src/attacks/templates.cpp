#include "attacks/templates.hpp"

#include <cmath>

#include "util/status.hpp"

namespace cpsguard::attacks {

using control::Signal;
using linalg::Vector;
using util::require;

namespace {

Signal masked_signal(std::size_t steps, const Vector& mask,
                     const std::function<double(std::size_t)>& profile) {
  Signal out;
  out.reserve(steps);
  for (std::size_t k = 0; k < steps; ++k) {
    Vector a(mask.size());
    const double v = profile(k);
    for (std::size_t i = 0; i < mask.size(); ++i) a[i] = v * mask[i];
    out.push_back(std::move(a));
  }
  return out;
}

void check_dim(const Vector& mask, std::size_t dim, const std::string& name) {
  require(mask.size() == dim,
          name + ": channel mask dimension mismatch (expected " +
              std::to_string(dim) + ")");
}

}  // namespace

AttackTemplate bias_attack(const Vector& channel_mask) {
  return AttackTemplate{
      "bias", [channel_mask](double magnitude, std::size_t steps, std::size_t dim) {
        check_dim(channel_mask, dim, "bias_attack");
        return masked_signal(steps, channel_mask,
                             [&](std::size_t) { return magnitude; });
      }};
}

AttackTemplate ramp_attack(const Vector& channel_mask) {
  return AttackTemplate{
      "ramp", [channel_mask](double magnitude, std::size_t steps, std::size_t dim) {
        check_dim(channel_mask, dim, "ramp_attack");
        return masked_signal(steps, channel_mask, [&](std::size_t k) {
          return magnitude * static_cast<double>(k + 1) /
                 static_cast<double>(steps);
        });
      }};
}

AttackTemplate surge_attack(const Vector& channel_mask, double start_fraction) {
  require(start_fraction >= 0.0 && start_fraction <= 1.0,
          "surge_attack: start_fraction must be in [0, 1]");
  return AttackTemplate{
      "surge",
      [channel_mask, start_fraction](double magnitude, std::size_t steps,
                                     std::size_t dim) {
        check_dim(channel_mask, dim, "surge_attack");
        const auto start = static_cast<std::size_t>(
            start_fraction * static_cast<double>(steps));
        return masked_signal(steps, channel_mask, [&](std::size_t k) {
          return k >= start ? magnitude : 0.0;
        });
      }};
}

AttackTemplate geometric_attack(const Vector& channel_mask, double growth) {
  require(growth > 1.0, "geometric_attack: growth must exceed 1");
  return AttackTemplate{
      "geometric",
      [channel_mask, growth](double magnitude, std::size_t steps, std::size_t dim) {
        check_dim(channel_mask, dim, "geometric_attack");
        return masked_signal(steps, channel_mask, [&](std::size_t k) {
          // Peaks at `magnitude` on the final instant.
          const double exponent =
              static_cast<double>(k) - static_cast<double>(steps - 1);
          return magnitude * std::pow(growth, exponent);
        });
      }};
}

AttackTemplate burst_attack(const Vector& channel_mask, std::size_t on,
                            std::size_t off) {
  require(on > 0, "burst_attack: on length must be positive");
  return AttackTemplate{
      "burst",
      [channel_mask, on, off](double magnitude, std::size_t steps, std::size_t dim) {
        check_dim(channel_mask, dim, "burst_attack");
        const std::size_t period = on + off;
        return masked_signal(steps, channel_mask, [&](std::size_t k) {
          return (k % period) < on ? magnitude : 0.0;
        });
      }};
}

std::vector<AttackTemplate> standard_library(std::size_t dim, std::size_t horizon) {
  Vector ones(dim);
  for (std::size_t i = 0; i < dim; ++i) ones[i] = 1.0;
  return {bias_attack(ones), ramp_attack(ones), surge_attack(ones, 0.6),
          geometric_attack(ones, 1.2),
          burst_attack(ones, std::max<std::size_t>(1, horizon / 10),
                       std::max<std::size_t>(1, horizon / 10))};
}

}  // namespace cpsguard::attacks
