// search.hpp — smallest-successful-magnitude search over attack templates.
//
// For each template, find (by exponential bracketing + bisection) the
// smallest magnitude that violates pfc, and report whether that attack is
// caught by the monitoring system and/or a residue detector.  This is the
// baseline adversary formal synthesis is compared against: a template that
// needs detection-triggering amplitudes to succeed is harmless against the
// synthesized thresholds, while Algorithm 1 finds the stealthy shapes
// templates miss.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attacks/templates.hpp"
#include "control/closed_loop.hpp"
#include "detect/detector.hpp"
#include "monitor/monitor.hpp"
#include "synth/spec.hpp"

namespace cpsguard::attacks {

struct SearchOptions {
  double initial_magnitude = 1e-3;
  double max_magnitude = 1e6;
  std::size_t bisection_steps = 40;
  /// Worker threads for the per-template fan-out: 1 = serial (default),
  /// 0 = one per hardware thread.  Each template's bracket/bisection is
  /// fully independent, so results are identical for every setting.
  std::size_t threads = 1;
};

/// Outcome for one template.
struct TemplateResult {
  std::string name;
  /// Smallest magnitude that violates pfc (nullopt: even max_magnitude
  /// fails to break the loop).
  std::optional<double> min_violating_magnitude;
  /// At that magnitude: does mdc raise an alarm?
  bool caught_by_monitors = false;
  /// At that magnitude: does the residue detector raise an alarm?
  bool caught_by_detector = false;
  /// Residue peak of the minimal violating run.
  double residue_peak = 0.0;
  /// |deviation| achieved by the minimal violating run.
  double deviation = 0.0;

  /// A template "wins" when it violates pfc with nobody noticing.
  bool stealthy_success() const {
    return min_violating_magnitude && !caught_by_monitors && !caught_by_detector;
  }
};

/// Runs the search for every template.  `detector` may be null (no residue
/// detector deployed, the paper's starting point).
std::vector<TemplateResult> search_templates(
    const control::ClosedLoop& loop, const synth::Criterion& pfc,
    const monitor::MonitorSet& monitors, const detect::ResidueDetector* detector,
    std::size_t horizon, const std::vector<AttackTemplate>& templates,
    const SearchOptions& options = {});

}  // namespace cpsguard::attacks
