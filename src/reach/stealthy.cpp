#include "reach/stealthy.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace cpsguard::reach {

using linalg::Matrix;
using linalg::Vector;
using util::require;

namespace {

/// Stacked dynamics of [x; x̂] with the stealthy attacker reparametrized as
/// the residue disturbance d_k (see header).
struct StackedSystem {
  Matrix m;        // 2n x 2n
  Matrix n_gain;   // 2n x m_out: injects L d_k into the estimate block
  Vector offset;   // 2n: operating-point feedthrough b0 in both blocks
};

StackedSystem build_stacked(const control::LoopConfig& loop) {
  const auto& sys = loop.plant;
  const std::size_t n = sys.num_states();
  const std::size_t m = sys.num_outputs();
  const Matrix bk = sys.b * loop.feedback_gain;
  const Vector b0 =
      sys.b * loop.operating_point.u_ss + bk * loop.operating_point.x_ss;

  StackedSystem out;
  out.m = Matrix(2 * n, 2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      out.m(r, c) = sys.a(r, c);
      out.m(r, n + c) = -bk(r, c);
      out.m(n + r, n + c) = sys.a(r, c) - bk(r, c);
    }
  }
  out.n_gain = Matrix(2 * n, m);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c) out.n_gain(n + r, c) = loop.kalman_gain(r, c);
  out.offset = Vector(2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    out.offset[r] = b0[r];
    out.offset[n + r] = b0[r];
  }
  return out;
}

Box project(const Zonotope& stacked, std::size_t begin, std::size_t count) {
  const Box hull = stacked.interval_hull();
  std::vector<Interval> dims;
  dims.reserve(count);
  for (std::size_t i = 0; i < count; ++i) dims.push_back(hull[begin + i]);
  return Box(std::move(dims));
}

}  // namespace

StealthyReachResult stealthy_reach(const control::LoopConfig& loop,
                                   const detect::ThresholdVector& thresholds,
                                   std::size_t horizon,
                                   const StealthyReachOptions& options) {
  loop.validate();
  require(horizon > 0, "stealthy_reach: horizon must be positive");
  const detect::ThresholdVector filled = thresholds.filled();
  require(filled.size() > 0 && filled.is_set(0),
          "stealthy_reach: at least one threshold must be set (an instant "
          "with no residue check leaves the attacker unbounded)");
  for (std::size_t k = 0; k < filled.size(); ++k)
    require(filled.is_set(k), "stealthy_reach: threshold vector has gaps");

  const auto& sys = loop.plant;
  const std::size_t n = sys.num_states();
  const std::size_t m = sys.num_outputs();
  const StackedSystem stacked = build_stacked(loop);

  // Initial stacked set: x1 (point or box) x {xhat1}.
  Vector center(2 * n);
  Box x1_box = options.initial_states.value_or(Box::point(loop.x1));
  require(x1_box.dim() == n, "stealthy_reach: initial state box dimension");
  for (std::size_t i = 0; i < n; ++i) {
    center[i] = x1_box[i].center();
    center[n + i] = loop.xhat1[i];
  }
  Matrix gens(2 * n, 0);
  Zonotope set(center, gens);
  {
    const Vector radii = x1_box.radii();
    bool any = false;
    for (std::size_t i = 0; i < n; ++i)
      if (radii[i] > 0.0) any = true;
    if (any) {
      Vector stacked_radii(2 * n);
      for (std::size_t i = 0; i < n; ++i) stacked_radii[i] = radii[i];
      set = set.minkowski_sum(Box::symmetric(stacked_radii));
    }
  }

  StealthyReachResult result;
  result.state_hull.reserve(horizon + 1);
  result.estimate_hull.reserve(horizon + 1);
  result.state_hull.push_back(project(set, 0, n));
  result.estimate_hull.push_back(project(set, n, n));
  result.peak_order = set.order();

  // The first instant applies the configured initial input u1 instead of
  // the feedback law (ClosedLoop computes u_{k+1} from x̂_{k+1} only after
  // the first update), so step 0 uses block-diagonal dynamics with a B*u1
  // offset.
  Matrix m0(2 * n, 2 * n);
  Vector offset0(2 * n);
  {
    const Vector bu1 = sys.b * loop.u1;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        m0(r, c) = sys.a(r, c);
        m0(n + r, n + c) = sys.a(r, c);
      }
      offset0[r] = bu1[r];
      offset0[n + r] = bu1[r];
    }
  }

  for (std::size_t k = 0; k < horizon; ++k) {
    // Threshold at instant k: reuse the last entry past the vector end
    // (ResidueDetector::filled semantics).
    const double th = filled[std::min(k, filled.size() - 1)];
    // d_k ranges over the norm ball of radius th; the L-inf box is a sound
    // superset for every supported norm.
    Vector d_radii(m);
    for (std::size_t i = 0; i < m; ++i) d_radii[i] = th;
    const Zonotope disturbance =
        Zonotope::from_box(Box::symmetric(d_radii)).affine_map(stacked.n_gain);
    set = (k == 0 ? set.affine_map(m0, offset0)
                  : set.affine_map(stacked.m, stacked.offset))
              .minkowski_sum(disturbance);
    if (set.order() > options.max_order) set = set.reduce(options.max_order);
    result.peak_order = std::max(result.peak_order, set.order());
    result.state_hull.push_back(project(set, 0, n));
    result.estimate_hull.push_back(project(set, n, n));
  }
  return result;
}

bool certify_no_stealthy_violation(const control::LoopConfig& loop,
                                   const synth::ReachCriterion& pfc,
                                   const detect::ThresholdVector& thresholds,
                                   std::size_t horizon,
                                   const StealthyReachOptions& options) {
  const StealthyReachResult r = stealthy_reach(loop, thresholds, horizon, options);
  const Interval final_state = r.state_hull.back()[pfc.state_index()];
  const Interval band(pfc.target() - pfc.tolerance(), pfc.target() + pfc.tolerance());
  return band.contains(final_state);
}

double max_stealthy_deviation(const control::LoopConfig& loop,
                              std::size_t state_index, double target,
                              const detect::ThresholdVector& thresholds,
                              std::size_t horizon,
                              const StealthyReachOptions& options) {
  const StealthyReachResult r = stealthy_reach(loop, thresholds, horizon, options);
  const Interval final_state = r.state_hull.back()[state_index];
  return (final_state - Interval::point(target)).magnitude();
}

}  // namespace cpsguard::reach
