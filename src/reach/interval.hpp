// interval.hpp — closed-interval arithmetic.
//
// Support type for the reachability substrate: interval hulls of zonotopes,
// per-instant envelopes of attacker-reachable deviations, and quick
// containment checks against performance bands.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace cpsguard::reach {

/// Closed interval [lo, hi].  Empty intervals are not representable;
/// constructors require lo <= hi.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double lo_in, double hi_in);

  static Interval point(double v) { return Interval(v, v); }
  /// Symmetric interval [-r, r]; r must be non-negative.
  static Interval symmetric(double r);

  double width() const { return hi - lo; }
  double center() const { return 0.5 * (lo + hi); }
  double radius() const { return 0.5 * (hi - lo); }
  /// Largest absolute value contained.
  double magnitude() const;

  bool contains(double v) const { return lo <= v && v <= hi; }
  bool contains(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  bool intersects(const Interval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }

  Interval operator+(const Interval& rhs) const;
  Interval operator-(const Interval& rhs) const;
  Interval operator*(double s) const;
  Interval hull(const Interval& other) const;

  std::string str() const;
};

Interval operator*(double s, const Interval& iv);

/// Axis-aligned box in R^n.
class Box {
 public:
  Box() = default;
  explicit Box(std::vector<Interval> dims) : dims_(std::move(dims)) {}
  /// Degenerate box at a point.
  static Box point(const linalg::Vector& v);
  /// Symmetric box with per-component radii.
  static Box symmetric(const linalg::Vector& radii);

  std::size_t dim() const { return dims_.size(); }
  const Interval& operator[](std::size_t i) const;
  Interval& operator[](std::size_t i);

  linalg::Vector center() const;
  linalg::Vector radii() const;

  bool contains(const linalg::Vector& v) const;
  bool contains(const Box& other) const;
  Box hull(const Box& other) const;

  std::string str() const;

 private:
  std::vector<Interval> dims_;
};

}  // namespace cpsguard::reach
