// zonotope.hpp — zonotopes for linear reachability.
//
// A zonotope Z = {c + G b : ||b||_inf <= 1} is closed under exactly the two
// operations linear reachability needs — affine maps (M Z + t) and
// Minkowski sums (Z1 (+) Z2) — with no wrapping effect, which is why it is
// the standard set representation for LTI reach analysis.  Order reduction
// (Girard's box method) keeps the generator count bounded over long
// horizons at the cost of a sound over-approximation.
#pragma once

#include <cstddef>
#include <string>

#include "linalg/matrix.hpp"
#include "reach/interval.hpp"

namespace cpsguard::reach {

class Zonotope {
 public:
  Zonotope() = default;
  /// Degenerate zonotope: a point.
  explicit Zonotope(linalg::Vector center);
  /// Center + generator matrix (one generator per column).
  Zonotope(linalg::Vector center, linalg::Matrix generators);

  /// Axis-aligned box as a zonotope (one generator per nonzero radius).
  static Zonotope from_box(const Box& box);

  std::size_t dim() const { return center_.size(); }
  std::size_t order() const { return generators_.cols(); }
  const linalg::Vector& center() const { return center_; }
  const linalg::Matrix& generators() const { return generators_; }

  /// M * Z (+ optional offset t).
  Zonotope affine_map(const linalg::Matrix& m) const;
  Zonotope affine_map(const linalg::Matrix& m, const linalg::Vector& t) const;

  /// Minkowski sum.
  Zonotope minkowski_sum(const Zonotope& other) const;
  /// Minkowski sum with an axis-aligned box (common case: bounded input).
  Zonotope minkowski_sum(const Box& box) const;

  /// Tight axis-aligned bounding box.
  Box interval_hull() const;

  /// Support function: max over Z of <direction, p>.
  double support(const linalg::Vector& direction) const;

  /// True when the point is within the interval hull (cheap necessary
  /// check; exact membership needs an LP and is not required here).
  bool hull_contains(const linalg::Vector& p) const {
    return interval_hull().contains(p);
  }

  /// Girard order reduction: keeps the `max_order` - dim largest
  /// generators and boxes the rest.  Sound (result contains *this).
  Zonotope reduce(std::size_t max_order) const;

  std::string str() const;

 private:
  linalg::Vector center_;
  linalg::Matrix generators_;  // dim x order
};

}  // namespace cpsguard::reach
