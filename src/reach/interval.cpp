#include "reach/interval.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/status.hpp"

namespace cpsguard::reach {

using util::require;

Interval::Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {
  require(lo_in <= hi_in, "Interval: lo must not exceed hi");
}

Interval Interval::symmetric(double r) {
  require(r >= 0.0, "Interval::symmetric: radius must be non-negative");
  return Interval(-r, r);
}

double Interval::magnitude() const { return std::max(std::abs(lo), std::abs(hi)); }

Interval Interval::operator+(const Interval& rhs) const {
  return Interval(lo + rhs.lo, hi + rhs.hi);
}

Interval Interval::operator-(const Interval& rhs) const {
  return Interval(lo - rhs.hi, hi - rhs.lo);
}

Interval Interval::operator*(double s) const {
  return s >= 0.0 ? Interval(lo * s, hi * s) : Interval(hi * s, lo * s);
}

Interval Interval::hull(const Interval& other) const {
  return Interval(std::min(lo, other.lo), std::max(hi, other.hi));
}

std::string Interval::str() const {
  std::ostringstream out;
  out << "[" << lo << ", " << hi << "]";
  return out.str();
}

Interval operator*(double s, const Interval& iv) { return iv * s; }

Box Box::point(const linalg::Vector& v) {
  std::vector<Interval> dims;
  dims.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) dims.push_back(Interval::point(v[i]));
  return Box(std::move(dims));
}

Box Box::symmetric(const linalg::Vector& radii) {
  std::vector<Interval> dims;
  dims.reserve(radii.size());
  for (std::size_t i = 0; i < radii.size(); ++i)
    dims.push_back(Interval::symmetric(radii[i]));
  return Box(std::move(dims));
}

const Interval& Box::operator[](std::size_t i) const {
  require(i < dims_.size(), "Box: index out of range");
  return dims_[i];
}

Interval& Box::operator[](std::size_t i) {
  require(i < dims_.size(), "Box: index out of range");
  return dims_[i];
}

linalg::Vector Box::center() const {
  linalg::Vector c(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) c[i] = dims_[i].center();
  return c;
}

linalg::Vector Box::radii() const {
  linalg::Vector r(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) r[i] = dims_[i].radius();
  return r;
}

bool Box::contains(const linalg::Vector& v) const {
  require(v.size() == dims_.size(), "Box::contains: dimension mismatch");
  for (std::size_t i = 0; i < dims_.size(); ++i)
    if (!dims_[i].contains(v[i])) return false;
  return true;
}

bool Box::contains(const Box& other) const {
  require(other.dim() == dims_.size(), "Box::contains: dimension mismatch");
  for (std::size_t i = 0; i < dims_.size(); ++i)
    if (!dims_[i].contains(other[i])) return false;
  return true;
}

Box Box::hull(const Box& other) const {
  require(other.dim() == dims_.size(), "Box::hull: dimension mismatch");
  std::vector<Interval> dims;
  dims.reserve(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i)
    dims.push_back(dims_[i].hull(other[i]));
  return Box(std::move(dims));
}

std::string Box::str() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << " x ";
    out << dims_[i].str();
  }
  out << "}";
  return out.str();
}

}  // namespace cpsguard::reach
