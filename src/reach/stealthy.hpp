// stealthy.hpp — sound over-approximation of what a stealthy attacker can do.
//
// Key observation (exact reparametrization): with the residue detector in
// place, a stealthy attack must keep z_k inside the threshold ball, and the
// *only* way the attack enters the loop is through z_k = C x_k - C x̂_k + a_k.
// Substituting d_k := z_k turns the attacked closed loop into the linear
// system
//
//   x_{k+1}  = A x_k - B K x̂_k + b0           b0 = B u_ss + B K x_ss
//   x̂_{k+1} = (A - B K) x̂_k + L d_k + b0     ||d_k|| < Th[k]
//
// i.e. the stealthy attacker is exactly an exogenous disturbance d_k
// bounded by the threshold vector.  Propagating a zonotope through this
// system yields, per instant, a superset of every state the plant can be
// driven to by ANY stealthy attack (the monitoring system mdc and attacker
// power limits only shrink the true set, so ignoring them is sound).  If
// the final-state envelope sits inside the pfc band, NO stealthy attack
// violates pfc — a certificate obtained in microseconds, compared against
// the SMT route in bench/ablation_reach.
//
// The converse does not hold: an envelope escaping the band does not imply
// a concrete attack (over-approximation + ignored mdc) — that direction is
// Algorithm 1's job.
#pragma once

#include <optional>
#include <vector>

#include "control/closed_loop.hpp"
#include "detect/threshold.hpp"
#include "reach/zonotope.hpp"
#include "synth/spec.hpp"

namespace cpsguard::reach {

struct StealthyReachOptions {
  /// Zonotope order cap (Girard reduction above it).  At the default the
  /// reduction never triggers for horizons <= ~35 on 2-state plants.
  std::size_t max_order = 80;
  /// Box of admissible initial plant states; default: the loop's x1.
  std::optional<Box> initial_states;
};

struct StealthyReachResult {
  /// Per-instant interval hull of the reachable plant state x_k under all
  /// stealthy attacks; entries k = 0..T (T+1 entries, mirroring Trace::x).
  std::vector<Box> state_hull;
  /// Per-instant hull of the estimate x̂_k (same indexing).
  std::vector<Box> estimate_hull;
  /// Largest zonotope order reached during propagation (diagnostics).
  std::size_t peak_order = 0;
};

/// Propagates the stealthy-attacker envelope for `horizon` instants against
/// the (filled) threshold vector.  Unset thresholds mean an unconstrained
/// residue at that instant — rejected, because the envelope would be
/// unbounded; deploy-time semantics (ThresholdVector::filled) fill gaps
/// before the call, matching detect::ResidueDetector.
StealthyReachResult stealthy_reach(const control::LoopConfig& loop,
                                   const detect::ThresholdVector& thresholds,
                                   std::size_t horizon,
                                   const StealthyReachOptions& options = {});

/// Sound safety certificate: true when NO attack that stays stealthy
/// w.r.t. `thresholds` can violate the reach criterion (final state outside
/// the tolerance band).  False means "unknown" — not "attack exists".
bool certify_no_stealthy_violation(const control::LoopConfig& loop,
                                   const synth::ReachCriterion& pfc,
                                   const detect::ThresholdVector& thresholds,
                                   std::size_t horizon,
                                   const StealthyReachOptions& options = {});

/// Largest |x_final[state_index] - target| any stealthy attack can achieve
/// per the over-approximation (the attacker-capability number used by the
/// capability-envelope example and the reach ablation bench).
double max_stealthy_deviation(const control::LoopConfig& loop,
                              std::size_t state_index, double target,
                              const detect::ThresholdVector& thresholds,
                              std::size_t horizon,
                              const StealthyReachOptions& options = {});

}  // namespace cpsguard::reach
