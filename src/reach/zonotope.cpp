#include "reach/zonotope.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/status.hpp"

namespace cpsguard::reach {

using linalg::Matrix;
using linalg::Vector;
using util::require;

Zonotope::Zonotope(Vector center)
    : center_(std::move(center)), generators_(center_.size(), 0) {}

Zonotope::Zonotope(Vector center, Matrix generators)
    : center_(std::move(center)), generators_(std::move(generators)) {
  require(generators_.rows() == center_.size(),
          "Zonotope: generator rows must match center dimension");
}

Zonotope Zonotope::from_box(const Box& box) {
  const std::size_t n = box.dim();
  const Vector radii = box.radii();
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (radii[i] > 0.0) ++nonzero;
  Matrix g(n, nonzero);
  std::size_t col = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (radii[i] > 0.0) g(i, col++) = radii[i];
  }
  return Zonotope(box.center(), std::move(g));
}

Zonotope Zonotope::affine_map(const Matrix& m) const {
  require(m.cols() == dim(), "Zonotope::affine_map: dimension mismatch");
  return Zonotope(m * center_, m * generators_);
}

Zonotope Zonotope::affine_map(const Matrix& m, const Vector& t) const {
  Zonotope out = affine_map(m);
  require(t.size() == out.dim(), "Zonotope::affine_map: offset dimension mismatch");
  out.center_ = out.center_ + t;
  return out;
}

Zonotope Zonotope::minkowski_sum(const Zonotope& other) const {
  require(other.dim() == dim(), "Zonotope::minkowski_sum: dimension mismatch");
  Matrix g(dim(), order() + other.order());
  for (std::size_t r = 0; r < dim(); ++r) {
    for (std::size_t c = 0; c < order(); ++c) g(r, c) = generators_(r, c);
    for (std::size_t c = 0; c < other.order(); ++c)
      g(r, order() + c) = other.generators_(r, c);
  }
  return Zonotope(center_ + other.center_, std::move(g));
}

Zonotope Zonotope::minkowski_sum(const Box& box) const {
  return minkowski_sum(Zonotope::from_box(box));
}

Box Zonotope::interval_hull() const {
  std::vector<Interval> dims;
  dims.reserve(dim());
  for (std::size_t r = 0; r < dim(); ++r) {
    double radius = 0.0;
    for (std::size_t c = 0; c < order(); ++c) radius += std::abs(generators_(r, c));
    dims.push_back(Interval(center_[r] - radius, center_[r] + radius));
  }
  return Box(std::move(dims));
}

double Zonotope::support(const Vector& direction) const {
  require(direction.size() == dim(), "Zonotope::support: dimension mismatch");
  double value = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) value += direction[i] * center_[i];
  for (std::size_t c = 0; c < order(); ++c) {
    double dot = 0.0;
    for (std::size_t r = 0; r < dim(); ++r) dot += direction[r] * generators_(r, c);
    value += std::abs(dot);
  }
  return value;
}

Zonotope Zonotope::reduce(std::size_t max_order) const {
  require(max_order >= dim(),
          "Zonotope::reduce: max_order must be at least the dimension");
  if (order() <= max_order) return *this;

  // Girard: sort generators by L1 norm, keep the largest (max_order - dim)
  // exactly, and over-approximate the rest with their bounding box.
  const std::size_t keep = max_order - dim();
  std::vector<double> norms(order(), 0.0);
  for (std::size_t c = 0; c < order(); ++c)
    for (std::size_t r = 0; r < dim(); ++r) norms[c] += std::abs(generators_(r, c));
  std::vector<std::size_t> idx(order());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return norms[a] > norms[b]; });

  Matrix g(dim(), keep + dim());
  for (std::size_t c = 0; c < keep; ++c)
    for (std::size_t r = 0; r < dim(); ++r) g(r, c) = generators_(r, idx[c]);
  // Box the tail: per-dimension sum of absolute contributions.
  for (std::size_t t = keep; t < order(); ++t)
    for (std::size_t r = 0; r < dim(); ++r)
      g(r, keep + r) += std::abs(generators_(r, idx[t]));
  return Zonotope(center_, std::move(g));
}

std::string Zonotope::str() const {
  std::ostringstream out;
  out << "zonotope(dim=" << dim() << ", order=" << order()
      << ", hull=" << interval_hull().str() << ")";
  return out.str();
}

}  // namespace cpsguard::reach
