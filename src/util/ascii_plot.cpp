#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/status.hpp"

namespace cpsguard::util {
namespace {

bool finite(double v) { return std::isfinite(v); }

}  // namespace

std::string render_plot(const std::vector<Series>& series, const PlotOptions& opts) {
  require(opts.width >= 8 && opts.height >= 4, "render_plot: canvas too small");
  std::size_t max_len = 0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    max_len = std::max(max_len, s.values.size());
    for (double v : s.values) {
      if (!finite(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  std::ostringstream out;
  if (!opts.title.empty()) out << "  " << opts.title << '\n';
  if (max_len == 0 || !finite(lo) || !finite(hi)) {
    out << "  (no data)\n";
    return out.str();
  }
  if (opts.y_zero) {
    lo = std::min(lo, 0.0);
    hi = std::max(hi, 0.0);
  }
  if (hi - lo < 1e-12) {  // flat line: widen the band so it renders mid-canvas
    const double pad = std::max(1e-12, std::abs(hi) * 0.1 + 1e-6);
    lo -= pad;
    hi += pad;
  }

  const int w = opts.width;
  const int h = opts.height;
  std::vector<std::string> canvas(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));
  auto to_col = [&](std::size_t idx) {
    if (max_len <= 1) return 0;
    return static_cast<int>(std::lround(static_cast<double>(idx) * (w - 1) /
                                        static_cast<double>(max_len - 1)));
  };
  auto to_row = [&](double v) {
    const double t = (v - lo) / (hi - lo);
    const int r = static_cast<int>(std::lround(t * (h - 1)));
    return (h - 1) - std::clamp(r, 0, h - 1);  // row 0 is the top
  };

  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      if (!finite(s.values[i])) continue;
      canvas[static_cast<std::size_t>(to_row(s.values[i]))]
            [static_cast<std::size_t>(to_col(i))] = s.glyph;
    }
  }

  char label[32];
  for (int r = 0; r < h; ++r) {
    const double v = hi - (hi - lo) * r / (h - 1);
    std::snprintf(label, sizeof(label), "%10.4g", v);
    const bool tick = (r == 0 || r == h - 1 || r == h / 2);
    out << (tick ? label : std::string(10, ' ')) << " |" << canvas[static_cast<std::size_t>(r)]
        << '\n';
  }
  out << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-') << '\n';
  std::snprintf(label, sizeof(label), "%zu", max_len - 1);
  out << std::string(12, ' ') << "0" << std::string(static_cast<std::size_t>(std::max(1, w - 1 - static_cast<int>(std::string(label).size()))), ' ')
      << label;
  if (!opts.x_label.empty()) out << "   [" << opts.x_label << ']';
  out << '\n';
  out << "  legend:";
  for (const auto& s : series) out << "  '" << s.glyph << "' = " << s.name;
  out << '\n';
  return out.str();
}

std::string render_plot(const std::string& name, const std::vector<double>& values,
                        const PlotOptions& opts) {
  return render_plot(std::vector<Series>{{name, values, '*'}}, opts);
}

}  // namespace cpsguard::util
