#include "util/csv.hpp"

#include <filesystem>
#include <sstream>

#include "util/status.hpp"

namespace cpsguard::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : arity_(columns.size()) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  out_.open(path);
  if (!out_) throw IoError("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  require(values.size() == arity_, "CsvWriter::row: arity mismatch");
  std::ostringstream line;
  line.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) line << ',';
    line << values[i];
  }
  out_ << line.str() << '\n';
  ++rows_;
}

void CsvWriter::row_strings(const std::vector<std::string>& cells) {
  require(cells.size() == arity_, "CsvWriter::row_strings: arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  ++rows_;
}

bool ensure_directory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return !ec;
}

}  // namespace cpsguard::util
