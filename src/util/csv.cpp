#include "util/csv.hpp"

#include <unistd.h>

#include <filesystem>
#include <sstream>

#include "util/status.hpp"

namespace cpsguard::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : arity_(columns.size()) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  out_.open(path);
  if (!out_) throw IoError("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  require(values.size() == arity_, "CsvWriter::row: arity mismatch");
  std::ostringstream line;
  line.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) line << ',';
    line << values[i];
  }
  out_ << line.str() << '\n';
  ++rows_;
}

void CsvWriter::row_strings(const std::vector<std::string>& cells) {
  require(cells.size() == arity_, "CsvWriter::row_strings: arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  ++rows_;
}

bool ensure_directory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return !ec;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) {
    fs::create_directories(parent, ec);
    if (ec) throw IoError("write_file_atomic: cannot create " + parent.string());
  }
  // Process-unique temp name: concurrent writers of the same target (e.g.
  // two sweep shards landing one cache entry) race benignly on the final
  // rename instead of corrupting each other's partial writes.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("write_file_atomic: cannot open " + tmp);
    out << content;
    if (!out) throw IoError("write_file_atomic: write failed for " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw IoError("write_file_atomic: rename to " + path + " failed");
  }
}

}  // namespace cpsguard::util
