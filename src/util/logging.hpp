// logging.hpp — tiny leveled logger used across the library.
//
// The synthesis loops (CEGIS rounds, solver calls) narrate progress through
// this logger so long-running benches stay observable.  Logging is opt-in:
// the default level is kWarn, benches raise it to kInfo.
#pragma once

#include <sstream>
#include <string>

namespace cpsguard::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& tag, const std::string& msg);

/// Stream-style log statement: LOG_STREAM(kInfo, "synth") << "round " << r;
class LogStream {
 public:
  LogStream(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  ~LogStream() { log_line(level_, tag_, out_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream out_;
};

}  // namespace cpsguard::util

#define CPSG_LOG(level, tag) ::cpsguard::util::LogStream(level, tag)
#define CPSG_DEBUG(tag) CPSG_LOG(::cpsguard::util::LogLevel::kDebug, tag)
#define CPSG_INFO(tag) CPSG_LOG(::cpsguard::util::LogLevel::kInfo, tag)
#define CPSG_WARN(tag) CPSG_LOG(::cpsguard::util::LogLevel::kWarn, tag)
