// csv.hpp — CSV emission for experiment artifacts.
//
// Every bench binary mirrors its printed series into a CSV file so figures
// can be re-plotted outside the terminal.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace cpsguard::util {

/// Streaming CSV writer.  Columns are fixed at construction; each row must
/// supply exactly that many cells.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws IoError if the file cannot be created.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Appends one data row.  Throws InvalidArgument on arity mismatch.
  void row(const std::vector<double>& values);

  /// Appends one row of preformatted cells.
  void row_strings(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Creates `dir` (and parents) if missing; returns false on failure.
bool ensure_directory(const std::string& dir);

/// Atomically replaces `path` with `content`: writes a process-unique temp
/// file next to it, then renames.  Parents are created as needed.  A
/// killed writer never leaves a half-written file at `path` — the sweep
/// cache and campaign manifests rely on this for resume safety.  Throws
/// IoError on failure.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace cpsguard::util
