#include "util/bytes.hpp"

#include <cstring>

#include "util/hash.hpp"
#include "util/status.hpp"

namespace cpsguard::util {

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  require(s.size() <= 0xFFFFFFFFULL, "ByteWriter: string too long for u32 prefix");
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

void ByteWriter::raw(const void* data, std::size_t len) {
  out_.append(static_cast<const char*>(data), len);
}

const unsigned char* ByteReader::need(std::size_t count) {
  require(count <= len_ - pos_, "ByteReader: truncated input");
  const unsigned char* at = data_ + pos_;
  pos_ += count;
  return at;
}

std::uint8_t ByteReader::u8() { return *need(1); }

std::uint32_t ByteReader::u32() {
  const unsigned char* at = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(at[i]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  const unsigned char* at = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(at[i]) << (8 * i);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t len = u32();
  const unsigned char* at = need(len);
  return std::string(reinterpret_cast<const char*>(at), len);
}

void ByteReader::raw(void* out, std::size_t len) {
  std::memcpy(out, need(len), len);
}

void ByteReader::expect_done(const char* what) const {
  require(done(), std::string(what) + ": trailing bytes after payload");
}

namespace {
constexpr char kDigestPrefix[] = "sha256:";
constexpr std::size_t kPrefixLen = 7;
constexpr std::size_t kDigestLen = 64;  // hex sha256
}  // namespace

std::string frame_with_digest(const std::string& payload) {
  std::string framed;
  framed.reserve(kPrefixLen + kDigestLen + 1 + payload.size());
  framed.append(kDigestPrefix);
  framed.append(sha256_hex(payload));
  framed.push_back('\n');
  framed.append(payload);
  return framed;
}

std::string unframe_with_digest(const std::string& framed, const char* what) {
  require(framed.size() >= kPrefixLen + kDigestLen + 1 &&
              framed.compare(0, kPrefixLen, kDigestPrefix) == 0 &&
              framed[kPrefixLen + kDigestLen] == '\n',
          std::string(what) + ": missing integrity framing");
  const std::string digest = framed.substr(kPrefixLen, kDigestLen);
  std::string payload = framed.substr(kPrefixLen + kDigestLen + 1);
  require(sha256_hex(payload) == digest,
          std::string(what) + ": integrity digest mismatch (corrupt bytes)");
  return payload;
}

}  // namespace cpsguard::util
