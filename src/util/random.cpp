#include "util/random.hpp"

#include <cmath>

#include "util/status.hpp"

namespace cpsguard::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::substream(std::uint64_t seed, std::uint64_t index) {
  // One SplitMix64 round decorrelates the user seed; a second round over
  // (mixed + index * golden) scrambles the stream index before the Rng
  // constructor expands the result into xoshiro state.  The extra round
  // matters: seeding the constructor with `mixed + golden * index` directly
  // would make neighbouring substreams share 3 of their 4 state words
  // (each state word is the next SplitMix64 output, so stream i+1's state
  // would be stream i's shifted by one).
  std::uint64_t sm = seed;
  const std::uint64_t mixed = splitmix64(sm);
  std::uint64_t stream = mixed + 0x9E3779B97F4A7C15ULL * index;
  return Rng(splitmix64(stream));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller with rejection of u1 == 0.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

std::uint64_t Rng::below(std::uint64_t n) {
  require(n > 0, "Rng::below: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v = 0;
  do {
    v = next_u64();
  } while (v > limit);
  return v % n;
}

std::vector<double> Rng::gaussian_vector(std::size_t n, double stddev) {
  std::vector<double> out(n);
  for (auto& v : out) v = gaussian(0.0, stddev);
  return out;
}

std::vector<double> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<double> out(n);
  for (auto& v : out) v = uniform(lo, hi);
  return out;
}

}  // namespace cpsguard::util
