#include "util/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/random.hpp"

namespace cpsguard::util {

double RetryPolicy::delay_ms(std::size_t attempt, std::uint64_t salt) const {
  if (attempt == 0) return 0.0;
  double delay = base_delay_ms;
  for (std::size_t i = 1; i < attempt && delay < max_delay_ms; ++i)
    delay *= multiplier;
  delay = std::min(delay, max_delay_ms);
  if (jitter <= 0.0) return delay;
  // Substream (seed ^ salt, attempt): distinct retry loops and distinct
  // attempts draw independent, reproducible jitter factors.
  Rng rng = Rng::substream(seed ^ salt, attempt);
  const double factor = 1.0 - jitter + 2.0 * jitter * rng.uniform();
  return delay * factor;
}

void sleep_for_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace cpsguard::util
