// fault.hpp — deterministic fault injection for the campaign fabric.
//
// Robustness code is only trustworthy when its failure paths execute, so
// the sweep layer routes every failure-prone operation through a named
// fault SITE.  Arming a seeded FaultPlan makes those sites fail with the
// configured probability — thrown I/O errors, torn cache payloads, aborted
// worker processes, stalls — and because every draw comes from util::Rng
// substreams of the plan seed, a chaos run is exactly reproducible: same
// plan, same faults, same recovery.  Unarmed (the default), every helper
// here is a no-op on the hot path.
//
// Registered sites:
//   cache_read    ResultCache::load — entry unreadable, quarantined as corrupt
//   cache_write   ResultCache::store — payload torn (detected on later read)
//   cache_rename  ResultCache::store — atomic publish fails (ENOSPC-style)
//   cell_execute  CampaignEngine — a cell's execution throws
//   worker_abort  CampaignEngine loop — the worker process dies mid-shard
//   worker_stall  CampaignEngine loop — the worker hangs (deadline testing)
//   serve_accept      serve::Server — an accepted connection is shed at once
//   serve_read        serve::Server — a readable connection is dropped unread
//   serve_write       serve::Server — a flush fails, dropping the connection
//   serve_checkpoint  serve::SessionStore — a snapshot persist throws or tears
//
// A plan is armed per process: `cpsguard_cli ... --inject SPEC` or the
// CPSGUARD_INJECT environment variable, SPEC being a comma-separated list
// of `site=probability[:max_failures]` with an optional trailing `@seed`,
// e.g. `cache_write=0.1,worker_abort=0.05@7`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace cpsguard::util::fault {

/// Exit code a worker_abort fault dies with (distinguishable from crashes
/// the test harness did not inject).
inline constexpr int kAbortExitCode = 86;

/// Seconds a worker_stall fault sleeps — far past any sane coordinator
/// deadline, so a stalled worker is always reaped by supervision, never by
/// the stall expiring on its own.
inline constexpr double kStallSeconds = 120.0;

struct SiteSpec {
  double probability = 0.0;  ///< per-draw failure probability in [0, 1]
  /// The site disarms after this many injected failures (SIZE_MAX = never):
  /// `cell_execute=1:2` deterministically fails exactly the first two draws.
  std::size_t max_failures = static_cast<std::size_t>(-1);
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::map<std::string, SiteSpec> sites;

  /// Parses `spec` ("site=p[:limit],...[@seed]").  Unknown site names and
  /// malformed probabilities throw util::InvalidArgument; an empty spec
  /// yields an empty plan.  `default_seed` applies when no `@seed` suffix.
  static FaultPlan parse(const std::string& spec, std::uint64_t default_seed = 1);

  /// Canonical single-line form ("cache_write=0.1:3,worker_abort=0.05@7").
  std::string describe() const;
};

/// Arms `plan` for this process (replacing any previous plan and resetting
/// all per-site draw state).  An empty plan disarms.
void install(const FaultPlan& plan);
void clear();
bool armed();

/// Draws site `site`: true when the armed plan injects a failure here.
/// Always false when unarmed or the site is not in the plan.  Thread-safe;
/// draws are consumed in call order from a per-site substream of the seed.
bool should_fail(const std::string& site);

/// Number of failures site `site` has injected since install().
std::size_t injected(const std::string& site);

/// should_fail + throw util::IoError("fault:<site>: " + what).
void maybe_throw(const std::string& site, const std::string& what);

/// should_fail + immediate process death via _Exit(kAbortExitCode) — the
/// moral equivalent of SIGKILL mid-shard; destructors do not run, so
/// partially written state is left exactly as a real crash would leave it.
void maybe_abort(const std::string& site);

/// should_fail + sleep kStallSeconds (simulates a hung worker; the
/// coordinator's attempt deadline is expected to reap the process first).
void maybe_stall(const std::string& site);

/// should_fail + tear `payload` (truncates it mid-way and appends garbage),
/// simulating a torn write that slips past the atomic rename.
void maybe_corrupt(const std::string& site, std::string& payload);

}  // namespace cpsguard::util::fault
