// ascii_plot.hpp — terminal line plots for bench "figures".
//
// Each paper figure is rendered as an ASCII chart so `for b in bench/*; do
// $b; done` shows the reproduced series without any plotting dependency.
#pragma once

#include <string>
#include <vector>

namespace cpsguard::util {

/// One named series of (implicit index, value) points.
struct Series {
  std::string name;
  std::vector<double> values;
  char glyph = '*';
};

/// Options controlling the rendering of an AsciiPlot.
struct PlotOptions {
  int width = 72;    ///< plot area columns (excluding axis labels)
  int height = 20;   ///< plot area rows
  std::string title;
  std::string x_label;
  std::string y_label;
  bool y_zero = false;  ///< force the y-range to include 0
};

/// Renders up to ~6 series over a shared x index (sample number).
/// Series may have different lengths; x spans the longest one.
std::string render_plot(const std::vector<Series>& series, const PlotOptions& opts);

/// Convenience: plot a single series.
std::string render_plot(const std::string& name, const std::vector<double>& values,
                        const PlotOptions& opts);

}  // namespace cpsguard::util
