// table.hpp — aligned text tables for bench/test reporting.
#pragma once

#include <string>
#include <vector>

namespace cpsguard::util {

/// Accumulates rows of string cells and renders an aligned table with a
/// header rule, e.g.
///
///   detector         FAR      rounds
///   ---------------  -------  ------
///   pivot (Alg 2)    61.5 %   56
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; pads/truncates nothing — arity must match the header.
  void row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void row_numeric(const std::string& label, const std::vector<double>& values,
                   int precision = 4);

  /// Renders the table.
  std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `precision` significant decimal digits.
std::string format_double(double v, int precision = 4);

}  // namespace cpsguard::util
