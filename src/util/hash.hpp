// hash.hpp — content-addressed fingerprinting for experiment artifacts.
//
// The sweep layer caches one Report JSON per fully-resolved scenario cell,
// keyed by a digest of every field that can change the result.  The digest
// must be stable across platforms, standard libraries and process runs, so
// we implement SHA-256 ourselves (FIPS 180-4, ~80 lines) instead of pulling
// a dependency, and hash doubles by their IEEE-754 bit pattern — the same
// "bit-identical or different" contract the reports themselves obey.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cpsguard::util {

/// Streaming SHA-256.  Feed bytes/fields with update(), then read the
/// 64-char lowercase hex digest.  finished objects reject further updates.
class Sha256 {
 public:
  Sha256();

  /// Raw bytes.
  Sha256& update(const void* data, std::size_t len);
  /// Length-prefixed string: update(s.size()) then the bytes, so
  /// ("ab","c") and ("a","bc") hash differently when fed field-by-field.
  Sha256& update(const std::string& s);
  /// Little-endian 64-bit value.
  Sha256& update(std::uint64_t v);
  /// IEEE-754 bit pattern (normalizes -0.0 to +0.0 so the two equal
  /// doubles share a digest; NaNs hash as one canonical quiet NaN).
  Sha256& update(double v);
  /// Length-prefixed vector of doubles.
  Sha256& update(const std::vector<double>& values);

  /// Finalizes (idempotent) and returns the lowercase hex digest.
  std::string hex_digest();

 private:
  void process_block(const std::uint8_t* block);
  void finalize();

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
  std::string digest_;
};

/// One-shot digest of a string's bytes (no length prefix).
std::string sha256_hex(const std::string& data);

}  // namespace cpsguard::util
