// bytes.hpp — bounds-checked little-endian byte serialization.
//
// The service layer persists detector state (detect::Session snapshots) and
// speaks a length-framed wire protocol (serve/protocol.hpp); both need one
// portable, allocation-light encoding of integers, IEEE-754 doubles and
// length-prefixed strings.  ByteWriter appends to a std::string (the same
// currency the socket layer and the sha256 framing use), ByteReader walks a
// borrowed buffer and throws util::InvalidArgument on any truncation or
// overrun — hostile input must never read out of bounds or crash.
//
// Encoding rules (version-stable, shared by snapshots and the wire):
//  * all integers little-endian, fixed width (u8/u32/u64);
//  * doubles as their IEEE-754 bit pattern in a little-endian u64 — the
//    round trip is bit-exact, which the snapshot/restore bit-identity
//    contract depends on;
//  * strings/blobs length-prefixed with a u32.
#pragma once

#include <cstdint>
#include <string>

namespace cpsguard::util {

/// Appends little-endian primitives to an owned byte string.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern as a little-endian u64 (bit-exact round trip).
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(const std::string& s);
  /// Raw bytes, no prefix (caller carries the length elsewhere).
  void raw(const void* data, std::size_t len);

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Walks a borrowed buffer; every read is bounds-checked and throws
/// util::InvalidArgument past the end.  The buffer must outlive the reader.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t len)
      : data_(static_cast<const unsigned char*>(data)), len_(len) {}
  explicit ByteReader(const std::string& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  /// Reads a u32 length prefix, then that many bytes.
  std::string str();
  /// Reads `len` raw bytes into `out`.
  void raw(void* out, std::size_t len);

  std::size_t remaining() const { return len_ - pos_; }
  bool done() const { return pos_ == len_; }
  /// Throws unless the whole buffer was consumed — decoders call this so
  /// trailing garbage is rejected, not silently ignored.
  void expect_done(const char* what) const;

 private:
  const unsigned char* need(std::size_t count);

  const unsigned char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// Wraps `payload` in the library's integrity framing — the format PR 6's
/// content-addressed cache established: "sha256:" + 64 hex chars + '\n' +
/// payload.  Snapshot files and wire-carried snapshots reuse it so every
/// durable artifact self-verifies the same way.
std::string frame_with_digest(const std::string& payload);

/// Inverse of frame_with_digest: verifies the digest and returns the
/// payload.  Throws util::InvalidArgument on bad framing or a digest
/// mismatch (`what` names the artifact in the error message).
std::string unframe_with_digest(const std::string& framed, const char* what);

}  // namespace cpsguard::util
