#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/status.hpp"

namespace cpsguard::util {

TextTable::TextTable(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void TextTable::row(std::vector<std::string> cells) {
  require(cells.size() == rows_.front().size(), "TextTable::row: arity mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::row_numeric(const std::string& label, const std::vector<double>& values,
                            int precision) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  row(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(rows_.front().size(), 0);
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      out << r[c] << std::string(widths[c] - r[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(rows_.front());
  for (std::size_t c = 0; c < widths.size(); ++c)
    out << std::string(widths[c], '-') << "  ";
  out << '\n';
  for (std::size_t i = 1; i < rows_.size(); ++i) emit(rows_[i]);
  return out.str();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

}  // namespace cpsguard::util
