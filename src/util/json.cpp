#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/status.hpp"

namespace cpsguard::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  require(!stack_.empty() && stack_.back() == Frame::kObject,
          "JsonWriter: end_object with no open object");
  require(!key_pending_, "JsonWriter: end_object with a dangling key");
  stack_.pop_back();
  has_items_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  require(!stack_.empty() && stack_.back() == Frame::kArray,
          "JsonWriter: end_array with no open array");
  stack_.pop_back();
  has_items_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  require(!stack_.empty() && stack_.back() == Frame::kObject,
          "JsonWriter: key outside an object");
  require(!key_pending_, "JsonWriter: consecutive keys without a value");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::vector<double>& values) {
  begin_array();
  for (const double v : values) value(v);
  return end_array();
}

JsonWriter& JsonWriter::value(const std::vector<std::string>& values) {
  begin_array();
  for (const auto& v : values) value(v);
  return end_array();
}

const std::string& JsonWriter::str() const {
  require(stack_.empty(), "JsonWriter: str() with unclosed containers");
  return out_;
}

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (stack_.empty()) {
    require(out_.empty(), "JsonWriter: only one top-level value allowed");
    return;
  }
  require(stack_.back() == Frame::kArray,
          "JsonWriter: object members need a key");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

bool JsonValue::as_bool() const {
  require(kind_ == Kind::kBool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  require(kind_ == Kind::kNumber, "JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  require(kind_ == Kind::kString, "JsonValue: not a string");
  return string_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  throw InvalidArgument("JsonValue: size() on a scalar");
}

const JsonValue& JsonValue::at(std::size_t index) const {
  require(kind_ == Kind::kArray, "JsonValue: not an array");
  require(index < array_.size(), "JsonValue: array index out of range");
  return array_[index];
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (const JsonValue* v = find(key)) return *v;
  throw InvalidArgument("JsonValue: missing object member '" + key + "'");
}

const JsonValue* JsonValue::find(const std::string& key) const {
  require(kind_ == Kind::kObject, "JsonValue: not an object");
  for (const auto& [name, value] : object_)
    if (name == key) return &value;
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  require(kind_ == Kind::kObject, "JsonValue: not an object");
  return object_;
}

std::vector<double> JsonValue::as_number_array() const {
  require(kind_ == Kind::kArray, "JsonValue: not an array");
  std::vector<double> out;
  out.reserve(array_.size());
  for (const JsonValue& v : array_) {
    if (v.is_null())  // the writer's encoding of NaN/inf
      out.push_back(std::nan(""));
    else
      out.push_back(v.as_number());
  }
  return out;
}

/// Recursive-descent parser over the document string.  Kept in the .cpp so
/// the header exposes only parse_json; JsonValue befriends it for direct
/// field access while building nodes.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    require(pos_ == text_.size(), error("trailing characters"));
    return value;
  }

 private:
  std::string error(const std::string& what) const {
    return "parse_json: " + what + " at byte " + std::to_string(pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), error("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    require(peek() == c, error(std::string("expected '") + c + "'"));
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::strlen(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        if (consume_literal("true"))
          v.bool_ = true;
        else if (consume_literal("false"))
          v.bool_ = false;
        else
          throw InvalidArgument(error("bad literal"));
        return v;
      }
      case 'n':
        require(consume_literal("null"), error("bad literal"));
        return JsonValue();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), error("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      require(pos_ < text_.size(), error("unterminated escape"));
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), error("truncated \\u escape"));
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= unsigned(h - 'A' + 10);
            else
              throw InvalidArgument(error("bad \\u escape"));
          }
          // UTF-8 encode (the writer only emits \u00XX control codes, but
          // accept the full BMP; surrogate pairs are out of scope).
          if (code < 0x80) {
            out += char(code);
          } else if (code < 0x800) {
            out += char(0xC0 | (code >> 6));
            out += char(0x80 | (code & 0x3F));
          } else {
            out += char(0xE0 | (code >> 12));
            out += char(0x80 | ((code >> 6) & 0x3F));
            out += char(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          throw InvalidArgument(error("unknown escape"));
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-')
        ++pos_;
      else
        break;
    }
    require(pos_ > start, error("expected a value"));
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t consumed = 0;
      JsonValue v;
      v.kind_ = JsonValue::Kind::kNumber;
      v.number_ = std::stod(token, &consumed);
      require(consumed == token.size(), error("bad number '" + token + "'"));
      return v;
    } catch (const std::logic_error&) {
      throw InvalidArgument(error("bad number '" + token + "'"));
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace cpsguard::util
