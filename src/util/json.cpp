#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/status.hpp"

namespace cpsguard::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  require(!stack_.empty() && stack_.back() == Frame::kObject,
          "JsonWriter: end_object with no open object");
  require(!key_pending_, "JsonWriter: end_object with a dangling key");
  stack_.pop_back();
  has_items_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  require(!stack_.empty() && stack_.back() == Frame::kArray,
          "JsonWriter: end_array with no open array");
  stack_.pop_back();
  has_items_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  require(!stack_.empty() && stack_.back() == Frame::kObject,
          "JsonWriter: key outside an object");
  require(!key_pending_, "JsonWriter: consecutive keys without a value");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::vector<double>& values) {
  begin_array();
  for (const double v : values) value(v);
  return end_array();
}

JsonWriter& JsonWriter::value(const std::vector<std::string>& values) {
  begin_array();
  for (const auto& v : values) value(v);
  return end_array();
}

const std::string& JsonWriter::str() const {
  require(stack_.empty(), "JsonWriter: str() with unclosed containers");
  return out_;
}

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (stack_.empty()) {
    require(out_.empty(), "JsonWriter: only one top-level value allowed");
    return;
  }
  require(stack_.back() == Frame::kArray,
          "JsonWriter: object members need a key");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

}  // namespace cpsguard::util
