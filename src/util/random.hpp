// random.hpp — deterministic random number generation.
//
// All stochastic pieces of the library (process/measurement noise, the
// Monte-Carlo FAR protocol) draw from util::Rng so every experiment is
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace cpsguard::util {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// We implement the generator ourselves instead of relying on std::mt19937
/// so the bit stream is identical across standard libraries — the FAR
/// experiment must reproduce exactly from its seed.
class Rng {
 public:
  /// Seeds the state via SplitMix64 on `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Statistically independent generator for substream `index` of `seed`.
  /// Monte-Carlo protocols give every run its own substream so results are
  /// identical no matter how runs are distributed over worker threads.
  static Rng substream(std::uint64_t seed, std::uint64_t index);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Vector of `n` iid gaussian(0, stddev) samples.
  std::vector<double> gaussian_vector(std::size_t n, double stddev);

  /// Vector of `n` iid uniform [lo, hi) samples.
  std::vector<double> uniform_vector(std::size_t n, double lo, double hi);

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace cpsguard::util
