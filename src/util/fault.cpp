#include "util/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/retry.hpp"
#include "util/status.hpp"

namespace cpsguard::util::fault {

namespace {

constexpr const char* kKnownSites[] = {
    "cache_read",   "cache_write", "cache_rename",     "cell_execute",
    "worker_abort", "worker_stall", "serve_accept",    "serve_read",
    "serve_write",  "serve_checkpoint"};

bool known_site(const std::string& site) {
  for (const char* name : kKnownSites)
    if (site == name) return true;
  return false;
}

/// Armed plan plus per-site draw state.  One mutex guards everything: the
/// sites fire on failure paths and per-cell boundaries, never inside the
/// per-sample simulation loops, so contention is irrelevant.
struct Registry {
  std::mutex mutex;
  FaultPlan plan;
  bool armed = false;
  std::map<std::string, Rng> streams;
  std::map<std::string, std::size_t> failures;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

/// Stable per-site substream index: first 8 digest bytes of the site name.
std::uint64_t site_stream_index(const std::string& site) {
  const std::string digest = sha256_hex(site);
  std::uint64_t index = 0;
  for (int i = 0; i < 16; ++i) {
    const char c = digest[i];
    index = (index << 4) | static_cast<std::uint64_t>(
                               c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return index;
}

double parse_probability(const std::string& site, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const double p = std::stod(text, &consumed);
    require(consumed == text.size() && p >= 0.0 && p <= 1.0,
            "fault: bad probability '" + text + "' for site " + site);
    return p;
  } catch (const std::logic_error&) {
    throw InvalidArgument("fault: bad probability '" + text + "' for site " +
                          site);
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec, std::uint64_t default_seed) {
  FaultPlan plan;
  plan.seed = default_seed;
  std::string body = spec;
  const std::size_t at = body.rfind('@');
  if (at != std::string::npos) {
    const std::string seed_text = body.substr(at + 1);
    try {
      std::size_t consumed = 0;
      plan.seed = std::stoull(seed_text, &consumed);
      require(consumed == seed_text.size(),
              "fault: bad seed '" + seed_text + "'");
    } catch (const std::logic_error&) {
      throw InvalidArgument("fault: bad seed '" + seed_text + "'");
    }
    body = body.substr(0, at);
  }
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string item = body.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    require(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
            "fault: expected 'site=probability[:limit]', got '" + item + "'");
    const std::string site = item.substr(0, eq);
    require(known_site(site), "fault: unknown site '" + site + "'");
    std::string value = item.substr(eq + 1);
    SiteSpec entry;
    const std::size_t colon = value.find(':');
    if (colon != std::string::npos) {
      const std::string limit = value.substr(colon + 1);
      try {
        std::size_t consumed = 0;
        entry.max_failures = std::stoull(limit, &consumed);
        require(consumed == limit.size(), "fault: bad limit '" + limit + "'");
      } catch (const std::logic_error&) {
        throw InvalidArgument("fault: bad limit '" + limit + "'");
      }
      value = value.substr(0, colon);
    }
    entry.probability = parse_probability(site, value);
    plan.sites[site] = entry;
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const auto& [site, spec] : sites) {
    if (!out.empty()) out += ',';
    out += site + "=" + json_number(spec.probability);
    if (spec.max_failures != static_cast<std::size_t>(-1))
      out += ":" + std::to_string(spec.max_failures);
  }
  out += "@" + std::to_string(seed);
  return out;
}

void install(const FaultPlan& plan) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.plan = plan;
  reg.armed = !plan.sites.empty();
  reg.streams.clear();
  reg.failures.clear();
  for (const auto& [site, spec] : plan.sites) {
    (void)spec;
    reg.streams.emplace(site, Rng::substream(plan.seed, site_stream_index(site)));
    reg.failures[site] = 0;
  }
  if (reg.armed)
    CPSG_WARN("fault") << "fault injection armed: " << plan.describe();
}

void clear() { install(FaultPlan{}); }

bool armed() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.armed;
}

bool should_fail(const std::string& site) {
  require(known_site(site), "fault: unknown site '" + site + "'");
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (!reg.armed) return false;
  const auto it = reg.plan.sites.find(site);
  if (it == reg.plan.sites.end()) return false;
  std::size_t& count = reg.failures[site];
  if (count >= it->second.max_failures) return false;
  const bool fail = reg.streams.at(site).uniform() < it->second.probability;
  if (fail) {
    ++count;
    CPSG_WARN("fault") << "injected failure at site " << site << " (#" << count
                       << ")";
  }
  return fail;
}

std::size_t injected(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.failures.find(site);
  return it == reg.failures.end() ? 0 : it->second;
}

void maybe_throw(const std::string& site, const std::string& what) {
  if (should_fail(site)) throw IoError("fault:" + site + ": " + what);
}

void maybe_abort(const std::string& site) {
  if (should_fail(site)) {
    CPSG_WARN("fault") << "aborting process at site " << site;
    std::_Exit(kAbortExitCode);
  }
}

void maybe_stall(const std::string& site) {
  if (should_fail(site)) {
    CPSG_WARN("fault") << "stalling at site " << site;
    sleep_for_ms(kStallSeconds * 1000.0);
  }
}

void maybe_corrupt(const std::string& site, std::string& payload) {
  if (!should_fail(site)) return;
  // Tear roughly in half and append bytes no valid entry ends with, so the
  // damage is visible to checksums but not to file-existence checks.
  payload.resize(payload.size() / 2);
  payload.append("\x00\xff torn", 7);  // embedded NUL: append with length
}

}  // namespace cpsguard::util::fault
