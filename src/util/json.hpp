// json.hpp — streaming JSON emission and parsing for experiment artifacts.
//
// scenario::Report serializes itself through the writer so every
// experiment artifact (summary stats + tables + series) has a stable,
// machine-readable form next to the CSV mirrors.  The writer is
// deliberately tiny: a stack of open containers, strict nesting checks via
// util::require, and deterministic number formatting (%.17g round-trips
// every double bit-exactly, which the cross-thread reproducibility tests
// rely on).  The matching reader (JsonValue + parse_json) exists so the
// sweep layer can round-trip cached reports and campaign manifests without
// an external dependency.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cpsguard::util {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string json_escape(const std::string& s);

/// Shortest exact decimal form of `v` (%.17g; "null" for NaN/inf, which
/// JSON cannot represent).
std::string json_number(double v);

/// Stack-checked streaming JSON writer.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("runs").value(std::uint64_t{1000});
///   w.key("rows").begin_array(); ... w.end_array();
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Names the next value inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// Whole-array conveniences.
  JsonWriter& value(const std::vector<double>& values);
  JsonWriter& value(const std::vector<std::string>& values);

  /// Finished document.  Requires every container to be closed.
  const std::string& str() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool key_pending_ = false;
};

/// Parsed JSON document node.  Objects keep member order (the writer emits
/// deterministically ordered documents; the reader must not reshuffle them,
/// or the cache round-trip tests could not compare re-serialized output).
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; each throws InvalidArgument on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access.  size() also counts object members.
  std::size_t size() const;
  const JsonValue& at(std::size_t index) const;

  /// Object access: member lookup (throws on missing / non-object), probe
  /// (nullptr on missing), and ordered member list.
  const JsonValue& at(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Convenience: array of numbers -> vector<double> (throws on non-number
  /// elements; JSON null elements — the writer's NaN encoding — parse as NaN).
  std::vector<double> as_number_array() const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document (with trailing whitespace only).  Throws
/// util::InvalidArgument with a byte offset on malformed input.  Supports
/// exactly the grammar the writer emits plus standard \uXXXX escapes.
JsonValue parse_json(const std::string& text);

}  // namespace cpsguard::util
