// json.hpp — streaming JSON emission for experiment reports.
//
// scenario::Report serializes itself through this writer so every
// experiment artifact (summary stats + tables + series) has a stable,
// machine-readable form next to the CSV mirrors.  The writer is
// deliberately tiny: a stack of open containers, strict nesting checks via
// util::require, and deterministic number formatting (%.17g round-trips
// every double bit-exactly, which the cross-thread reproducibility tests
// rely on).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpsguard::util {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string json_escape(const std::string& s);

/// Shortest exact decimal form of `v` (%.17g; "null" for NaN/inf, which
/// JSON cannot represent).
std::string json_number(double v);

/// Stack-checked streaming JSON writer.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("runs").value(std::uint64_t{1000});
///   w.key("rows").begin_array(); ... w.end_array();
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Names the next value inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// Whole-array conveniences.
  JsonWriter& value(const std::vector<double>& values);
  JsonWriter& value(const std::vector<std::string>& values);

  /// Finished document.  Requires every container to be closed.
  const std::string& str() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool key_pending_ = false;
};

}  // namespace cpsguard::util
