// retry.hpp — bounded retry with exponential backoff and deterministic jitter.
//
// The campaign fabric retries failing work at two levels: the engine
// re-attempts a cell that threw (sweep::CampaignEngine) and the coordinator
// relaunches a crashed or hung worker (sweep::Coordinator).  Both share this
// policy.  Jitter is drawn from util::Rng seeded by (seed, salt, attempt),
// so a given schedule is reproducible from its seed — the same property the
// Monte-Carlo layer has, extended to failure handling.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cpsguard::util {

struct RetryPolicy {
  /// Total attempts including the first one; 1 = no retries.
  std::size_t max_attempts = 3;
  double base_delay_ms = 10.0;   ///< delay after the first failure
  double max_delay_ms = 2000.0;  ///< exponential growth cap
  double multiplier = 2.0;       ///< per-attempt growth factor
  /// Jitter fraction in [0, 1]: the delay is scaled by a deterministic
  /// uniform draw from [1 - jitter, 1 + jitter].  Spreads simultaneous
  /// relaunches without losing reproducibility.
  double jitter = 0.5;
  std::uint64_t seed = 1;  ///< jitter stream seed

  /// Backoff before attempt `attempt + 1`, given that attempt `attempt`
  /// (1-based) just failed.  `salt` separates the jitter streams of
  /// independent retry loops (e.g. one per cell) under one policy.
  double delay_ms(std::size_t attempt, std::uint64_t salt = 0) const;

  /// True while `attempt` (1-based) is within budget.
  bool allows(std::size_t attempt) const { return attempt <= max_attempts; }
};

/// Blocks the calling thread for `ms` milliseconds (no-op when ms <= 0).
void sleep_for_ms(double ms);

}  // namespace cpsguard::util
