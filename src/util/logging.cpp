#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace cpsguard::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& tag, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const double secs = std::chrono::duration<double>(now).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%10.3f] %s [%s] %s\n", secs, level_name(level), tag.c_str(),
               msg.c_str());
}

}  // namespace cpsguard::util
