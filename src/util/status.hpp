// status.hpp — error handling primitives for cpsguard.
//
// The library reports contract violations and numerical failures through a
// small exception hierarchy rooted at util::Error.  Recoverable "no result"
// outcomes (e.g. UNSAT from a solver) are modelled with std::optional /
// dedicated result enums instead of exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace cpsguard::util {

/// Root of the cpsguard exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad dimension, bad index...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or met a singular matrix.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// An I/O operation (CSV dump, code emission) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A solver backend failed in an unexpected way (Z3 exception, bad model).
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

/// Literal-message overload: avoids materialising a std::string on the
/// success path, which matters in per-sample hot loops (the string overload
/// above allocates its temporary even when `cond` holds).
inline void require(bool cond, const char* msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace cpsguard::util
