#include "can/transport.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "util/status.hpp"

namespace cpsguard::can {

using linalg::Vector;
using util::require;

void SensorMessageBinding::validate(std::size_t output_dim) const {
  message.validate();
  require(output_indices.size() == message.signals.size(),
          "SensorMessageBinding " + message.name +
              ": one output index per signal required");
  for (std::size_t idx : output_indices)
    require(idx < output_dim, "SensorMessageBinding " + message.name +
                                  ": output index out of range");
}

Mitm additive_mitm(const SensorMessageBinding& binding,
                   const std::vector<double>& bias) {
  require(bias.size() == binding.message.signals.size(),
          "additive_mitm: one bias per signal required");
  const MessageSpec spec = binding.message;
  return [spec, bias](const CanFrame& frame, std::size_t) {
    if (frame.id != spec.id || frame.extended != spec.extended) return frame;
    std::vector<double> values = spec.unpack(frame);
    for (std::size_t i = 0; i < values.size(); ++i) values[i] += bias[i];
    return spec.pack(values);
  };
}

Mitm replay_mitm(std::size_t delay) {
  require(delay > 0, "replay_mitm: delay must be positive");
  // One history queue per identifier; shared state lives in the closure.
  auto history = std::make_shared<std::map<std::uint32_t, std::deque<CanFrame>>>();
  return [history, delay](const CanFrame& frame, std::size_t) {
    std::deque<CanFrame>& q = (*history)[frame.id];
    q.push_back(frame);
    if (q.size() <= delay) return frame;  // not enough history yet
    CanFrame old = q.front();
    q.pop_front();
    return old;
  };
}

CanLoopTransport::CanLoopTransport(control::LoopConfig config,
                                   std::vector<SensorMessageBinding> bindings,
                                   Bus bus)
    : config_(std::move(config)), bindings_(std::move(bindings)), bus_(bus) {
  config_.validate();
  const std::size_t m = config_.plant.num_outputs();
  std::vector<bool> covered(m, false);
  for (const SensorMessageBinding& b : bindings_) {
    b.validate(m);
    for (std::size_t idx : b.output_indices) {
      require(!covered[idx], "CanLoopTransport: output " + std::to_string(idx) +
                                 " bound to two messages");
      covered[idx] = true;
    }
  }
  for (std::size_t i = 0; i < m; ++i)
    require(covered[i],
            "CanLoopTransport: output " + std::to_string(i) + " not bound");
}

control::Trace CanLoopTransport::simulate(std::size_t steps, const Mitm* attacker,
                                          const control::Signal* noise) const {
  const auto& sys = config_.plant;
  const std::size_t m = sys.num_outputs();
  if (noise) {
    require(noise->size() >= steps, "CanLoopTransport: too few noise entries");
    for (const auto& v : *noise)
      require(v.size() == m, "CanLoopTransport: noise dimension mismatch");
  }

  control::Trace tr;
  tr.ts = sys.ts;
  tr.x.reserve(steps + 1);
  tr.xhat.reserve(steps + 1);
  tr.u.reserve(steps);
  tr.y.reserve(steps);
  tr.z.reserve(steps);

  Vector x = config_.x1;
  Vector xhat = config_.xhat1;
  Vector u = config_.u1;
  const auto& op = config_.operating_point;
  for (std::size_t k = 0; k < steps; ++k) {
    // True sensor reading at the transducer.
    Vector y_true = sys.c * x + sys.d * u;
    if (noise) y_true += (*noise)[k];

    // Sensor nodes pack, the (optional) MITM rewrites, the controller
    // unpacks.  The controller-visible measurement is quantized even when
    // nobody attacks.
    Vector y(m);
    for (const SensorMessageBinding& b : bindings_) {
      std::vector<double> phys(b.message.signals.size());
      for (std::size_t i = 0; i < phys.size(); ++i)
        phys[i] = y_true[b.output_indices[i]];
      CanFrame frame = b.message.pack(phys);
      if (attacker && *attacker) frame = (*attacker)(frame, k);
      frame.validate();
      const std::vector<double> received = b.message.unpack(frame);
      for (std::size_t i = 0; i < received.size(); ++i)
        y[b.output_indices[i]] = received[i];
    }

    const Vector yhat = sys.c * xhat + sys.d * u;
    const Vector z = y - yhat;

    tr.x.push_back(x);
    tr.xhat.push_back(xhat);
    tr.u.push_back(u);
    tr.y.push_back(y);
    tr.z.push_back(z);

    x = sys.a * x + sys.b * u;
    xhat = sys.a * xhat + sys.b * u + config_.kalman_gain * z;
    u = op.u_ss - config_.feedback_gain * (xhat - op.x_ss);
  }
  tr.x.push_back(x);
  tr.xhat.push_back(xhat);
  return tr;
}

Vector CanLoopTransport::quantization_floor() const {
  Vector floor(config_.plant.num_outputs());
  for (const SensorMessageBinding& b : bindings_) {
    for (std::size_t i = 0; i < b.output_indices.size(); ++i)
      floor[b.output_indices[i]] = b.message.signals[i].max_roundtrip_error();
  }
  return floor;
}

BusReport CanLoopTransport::bus_report(std::size_t steps) const {
  std::vector<FrameRequest> requests;
  requests.reserve(steps * bindings_.size());
  const double ts = config_.plant.ts;
  for (std::size_t k = 0; k < steps; ++k) {
    for (const SensorMessageBinding& b : bindings_) {
      FrameRequest req;
      req.release_time = static_cast<double>(k) * ts;
      req.frame.id = b.message.id;
      req.frame.extended = b.message.extended;
      req.frame.dlc = b.message.dlc;
      requests.push_back(req);
    }
  }
  return bus_.transmit(std::move(requests));
}

}  // namespace cpsguard::can
