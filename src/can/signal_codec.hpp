// signal_codec.hpp — DBC-style physical-signal packing into CAN payloads.
//
// Real CAN traffic carries fixed-point signals: a physical value v maps to
// the raw integer round((v - offset) / scale), bit-packed little- (Intel)
// or big-endian (Motorola) at an arbitrary start bit.  The codec is exact
// in both directions up to the quantization step, saturates at the
// min/max of the spec (this is why the "dead zone + unbounded attacker"
// pathology of DESIGN.md §6 does not occur on a real bus), and its
// round-trip error — the quantization noise the residue detector must
// tolerate — is computable per signal (quantization_step()/2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "can/frame.hpp"

namespace cpsguard::can {

/// Bit packing order within the payload.
enum class ByteOrder {
  kLittleEndian,  ///< Intel: start bit is the LSB, bits grow upward
  kBigEndian,     ///< Motorola: start bit is the MSB (DBC numbering)
};

/// One signal within a CAN message (a DBC `SG_` line).
struct SignalSpec {
  std::string name;
  std::size_t start_bit = 0;  ///< DBC numbering (bit 7 is MSB of byte 0)
  std::size_t length = 16;    ///< 1..64 bits
  ByteOrder byte_order = ByteOrder::kLittleEndian;
  bool is_signed = false;
  double scale = 1.0;   ///< physical = raw * scale + offset
  double offset = 0.0;
  double min_phys = 0.0;  ///< saturation bounds (min == max == 0: derive from raw range)
  double max_phys = 0.0;

  /// Throws InvalidArgument when the spec is malformed (zero scale, length
  /// out of range, window not inside 64 bits...).
  void validate() const;

  /// Effective saturation bounds: the spec's when set, otherwise the
  /// representable raw range mapped to physical units.
  double effective_min() const;
  double effective_max() const;

  /// Physical size of one raw step = |scale|.
  double quantization_step() const { return scale < 0 ? -scale : scale; }

  /// Largest |decode(encode(v)) - v| over the representable range.
  double max_roundtrip_error() const { return quantization_step() / 2.0; }

  /// Physical → raw with rounding and saturation.
  std::uint64_t encode(double physical) const;
  /// Raw → physical.
  double decode(std::uint64_t raw) const;
};

/// Writes `raw`'s low `spec.length` bits into the payload per the spec.
void insert_raw(std::array<std::uint8_t, 8>& data, const SignalSpec& spec,
                std::uint64_t raw);
/// Reads the raw integer back.
std::uint64_t extract_raw(const std::array<std::uint8_t, 8>& data,
                          const SignalSpec& spec);

/// A CAN message: identifier plus the signals packed into its payload.
struct MessageSpec {
  std::string name;
  std::uint32_t id = 0;
  bool extended = false;
  std::uint8_t dlc = 8;
  std::vector<SignalSpec> signals;

  /// Validates every signal and rejects overlapping bit windows.
  void validate() const;

  /// Packs physical values (one per signal, in order) into a frame.
  CanFrame pack(const std::vector<double>& physical) const;

  /// Unpacks all signals from a frame (validates id/dlc match).
  std::vector<double> unpack(const CanFrame& frame) const;
};

}  // namespace cpsguard::can
