// transport.hpp — the closed loop with its sensor path routed over CAN.
//
// control::ClosedLoop hands the estimator ideal doubles; this transport
// model inserts the real pipeline the paper's attack traverses:
//
//   plant output y_k --pack--> CAN frames --[MITM may rewrite]--> unpack
//       --> controller sees quantized (and possibly spoofed) measurements.
//
// Consequences exercised by tests and benches:
//  * even benign runs carry quantization noise, so thresholds below the
//    codec's round-trip error are guaranteed false-alarm sources
//    (quantization_floor());
//  * the attacker is physically constrained to representable values —
//    saturation bounds replace the synthetic attack_bounds of the SMT
//    model, and spoofed values are quantized exactly like honest ones.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "can/bus.hpp"
#include "can/signal_codec.hpp"
#include "control/closed_loop.hpp"

namespace cpsguard::can {

/// Maps plant output components onto the signals of one CAN message.
/// message.signals[i] carries plant output component output_indices[i].
struct SensorMessageBinding {
  MessageSpec message;
  std::vector<std::size_t> output_indices;

  void validate(std::size_t output_dim) const;
};

/// A man-in-the-middle: sees each sensor frame (and the instant index) and
/// returns the frame to deliver.  Returning the input unchanged models a
/// passive tap; nullptr disables the attacker entirely.
using Mitm = std::function<CanFrame(const CanFrame& frame, std::size_t k)>;

/// Builds a MITM that adds `bias[i]` to message-signal i of the bound
/// message before re-encoding (the classic additive false-data injection of
/// the paper, but constrained to codec-representable values).
Mitm additive_mitm(const SensorMessageBinding& binding,
                   const std::vector<double>& bias);

/// Builds a MITM that replays the frame observed `delay` instants earlier
/// (frames before that pass through unmodified).
Mitm replay_mitm(std::size_t delay);

/// Closed-loop simulator whose measurement path crosses the CAN bus.
class CanLoopTransport {
 public:
  /// `bindings` must cover every plant output exactly once.
  CanLoopTransport(control::LoopConfig config, std::vector<SensorMessageBinding> bindings,
                   Bus bus = Bus());

  /// Runs `steps` instants.  The attacker (optional) rewrites sensor frames
  /// in flight; measurement noise (optional, dimension m per step) adds to
  /// the true outputs before encoding.
  control::Trace simulate(std::size_t steps, const Mitm* attacker = nullptr,
                          const control::Signal* measurement_noise = nullptr) const;

  /// Per-output worst-case |decode(encode(v)) - v| — the quantization noise
  /// floor any sane residue threshold must clear.
  linalg::Vector quantization_floor() const;

  /// Arbitration report for `steps` sampling instants of sensor traffic
  /// (all bound messages released at each sampling instant).
  BusReport bus_report(std::size_t steps) const;

  const control::LoopConfig& config() const { return config_; }
  const std::vector<SensorMessageBinding>& bindings() const { return bindings_; }

 private:
  control::LoopConfig config_;
  std::vector<SensorMessageBinding> bindings_;
  Bus bus_;
};

}  // namespace cpsguard::can
