#include "can/frame.hpp"

#include <sstream>

#include "util/status.hpp"

namespace cpsguard::can {

void CanFrame::validate() const {
  util::require(dlc <= 8, "CanFrame: dlc must be 0..8");
  util::require(id <= (extended ? kMaxExtendedId : kMaxBaseId),
                "CanFrame: identifier out of range for format");
  for (std::size_t i = dlc; i < data.size(); ++i)
    util::require(data[i] == 0, "CanFrame: payload bytes past dlc must be zero");
}

std::size_t CanFrame::wire_bits() const {
  // Classic CAN: SOF(1) + id(11/29 + control overhead) + RTR/IDE/r bits +
  // DLC(4) + data + CRC(15) + CRC delim + ACK(2) + EOF(7) + IFS(3).
  const std::size_t header = extended ? 1 + 29 + 3 + 4 + 3 : 1 + 11 + 2 + 4 + 1;
  const std::size_t body = static_cast<std::size_t>(dlc) * 8;
  const std::size_t trailer = 15 + 1 + 2 + 7 + 3;
  const std::size_t stuffable = header + body + 15;  // stuffing covers up to CRC
  return header + body + trailer + stuffable / 4;    // worst-case stuff bits
}

std::string CanFrame::str() const {
  std::ostringstream out;
  out << (extended ? "x" : "") << std::hex << id << std::dec << " [" << int(dlc)
      << "]";
  for (std::size_t i = 0; i < dlc; ++i) {
    out << (i ? " " : " ");
    static const char* digits = "0123456789ABCDEF";
    out << digits[data[i] >> 4] << digits[data[i] & 0xF];
  }
  return out.str();
}

bool arbitrates_before(const CanFrame& lhs, const CanFrame& rhs) {
  if (lhs.id != rhs.id) return lhs.id < rhs.id;
  return !lhs.extended && rhs.extended;
}

}  // namespace cpsguard::can
