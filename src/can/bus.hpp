// bus.hpp — non-preemptive priority-arbitrated CAN bus simulator.
//
// Classic CAN arbitration: whenever the bus goes idle, the pending frame
// with the dominant (lowest) identifier transmits next; a frame in flight
// is never preempted.  The simulator takes release times, replays the
// arbitration, and reports per-frame latencies and total bus load — the
// numbers that justify the paper's premise that heavyweight cryptography
// does not fit the medium (§I: "limited communication bandwidth as well as
// lightweight nature of computing nodes").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "can/frame.hpp"

namespace cpsguard::can {

/// Transmission request: `frame` becomes ready at `release_time` seconds.
struct FrameRequest {
  double release_time = 0.0;
  CanFrame frame;
};

/// Arbitration outcome for one request.
struct TransmittedFrame {
  CanFrame frame;
  double release_time = 0.0;
  double start_time = 0.0;  ///< when the frame won arbitration
  double end_time = 0.0;    ///< start + wire time

  double latency() const { return end_time - release_time; }
};

/// Aggregate bus statistics over one simulation.
struct BusReport {
  std::vector<TransmittedFrame> frames;  ///< in transmission order
  double busy_seconds = 0.0;
  double makespan_seconds = 0.0;
  double worst_latency = 0.0;

  double utilization() const {
    return makespan_seconds > 0.0 ? busy_seconds / makespan_seconds : 0.0;
  }
};

class Bus {
 public:
  /// `bitrate_bps`: classic CAN rates are 125k/250k/500k/1M bit/s.
  explicit Bus(double bitrate_bps = 500000.0);

  /// Wire time of one frame at the configured bitrate.
  double frame_seconds(const CanFrame& frame) const;

  /// Replays arbitration over the requests (any order) and returns the
  /// transmission schedule.  Ties on identifier are broken by release time
  /// then submission order, mirroring a node's internal FIFO.
  BusReport transmit(std::vector<FrameRequest> requests) const;

  double bitrate_bps() const { return bitrate_; }

 private:
  double bitrate_;
};

}  // namespace cpsguard::can
