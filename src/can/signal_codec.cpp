#include "can/signal_codec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/status.hpp"

namespace cpsguard::can {

using util::require;

namespace {

/// Low-`length` mask without the UB of a 64-bit shift.
std::uint64_t low_mask(std::size_t length) {
  return length >= 64 ? ~0ULL : (1ULL << length) - 1ULL;
}

/// Raw range of the spec as signed extremes.
void raw_range(const SignalSpec& spec, std::int64_t& lo, std::int64_t& hi) {
  if (spec.is_signed) {
    lo = spec.length >= 64 ? std::numeric_limits<std::int64_t>::min()
                           : -(static_cast<std::int64_t>(1) << (spec.length - 1));
    hi = spec.length >= 64
             ? std::numeric_limits<std::int64_t>::max()
             : (static_cast<std::int64_t>(1) << (spec.length - 1)) - 1;
  } else {
    lo = 0;
    // Clamp 64-bit unsigned to int64 max: encode() works in signed space
    // because physical values are doubles anyway.
    hi = spec.length >= 63 ? std::numeric_limits<std::int64_t>::max()
                           : static_cast<std::int64_t>(low_mask(spec.length));
  }
}

/// Absolute payload bit positions (byte*8 + bit, bit 0 = LSB) of the
/// signal's bits from raw LSB to raw MSB.
std::vector<std::size_t> bit_positions(const SignalSpec& spec) {
  std::vector<std::size_t> positions(spec.length);
  if (spec.byte_order == ByteOrder::kLittleEndian) {
    for (std::size_t i = 0; i < spec.length; ++i)
      positions[i] = spec.start_bit + i;
  } else {
    // Motorola: start_bit is the MSB; walk down within the byte, then to
    // bit 7 of the next byte.  Collect MSB-first, then reverse.
    std::size_t pos = spec.start_bit;
    for (std::size_t i = 0; i < spec.length; ++i) {
      positions[spec.length - 1 - i] = pos;
      if (i + 1 == spec.length) break;
      if (pos % 8 == 0) {
        pos += 15;  // LSB of this byte -> MSB of the next
      } else {
        --pos;
      }
    }
  }
  return positions;
}

}  // namespace

void SignalSpec::validate() const {
  require(length >= 1 && length <= 64, "SignalSpec " + name + ": length must be 1..64");
  require(scale != 0.0, "SignalSpec " + name + ": scale must be nonzero");
  require(std::isfinite(scale) && std::isfinite(offset),
          "SignalSpec " + name + ": scale/offset must be finite");
  require(min_phys <= max_phys,
          "SignalSpec " + name + ": min_phys must not exceed max_phys");
  for (std::size_t pos : bit_positions(*this))
    require(pos < 64, "SignalSpec " + name + ": bit window leaves the 8-byte payload");
}

double SignalSpec::effective_min() const {
  if (min_phys != 0.0 || max_phys != 0.0) return min_phys;
  std::int64_t lo, hi;
  raw_range(*this, lo, hi);
  return std::min(decode(static_cast<std::uint64_t>(lo) & low_mask(length)),
                  decode(static_cast<std::uint64_t>(hi) & low_mask(length)));
}

double SignalSpec::effective_max() const {
  if (min_phys != 0.0 || max_phys != 0.0) return max_phys;
  std::int64_t lo, hi;
  raw_range(*this, lo, hi);
  return std::max(decode(static_cast<std::uint64_t>(lo) & low_mask(length)),
                  decode(static_cast<std::uint64_t>(hi) & low_mask(length)));
}

std::uint64_t SignalSpec::encode(double physical) const {
  // NaN would slide through clamp into llround, whose result for
  // unrepresentable values is unspecified — reject instead of encoding
  // garbage onto the bus.  Infinities are fine: they saturate like any
  // other out-of-range value.
  require(!std::isnan(physical),
          "SignalSpec " + name + ": cannot encode NaN");
  const double clamped = std::clamp(physical, effective_min(), effective_max());
  const double raw_real = (clamped - offset) / scale;
  std::int64_t raw = static_cast<std::int64_t>(std::llround(raw_real));
  std::int64_t lo, hi;
  raw_range(*this, lo, hi);
  raw = std::clamp(raw, lo, hi);
  return static_cast<std::uint64_t>(raw) & low_mask(length);
}

double SignalSpec::decode(std::uint64_t raw) const {
  raw &= low_mask(length);
  double value;
  if (is_signed && length < 64 && (raw >> (length - 1)) != 0) {
    // Sign-extend.
    const std::int64_t extended =
        static_cast<std::int64_t>(raw | ~low_mask(length));
    value = static_cast<double>(extended);
  } else {
    value = static_cast<double>(raw);
  }
  return value * scale + offset;
}

void insert_raw(std::array<std::uint8_t, 8>& data, const SignalSpec& spec,
                std::uint64_t raw) {
  raw &= low_mask(spec.length);
  const std::vector<std::size_t> positions = bit_positions(spec);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const std::size_t byte = positions[i] / 8;
    const std::size_t bit = positions[i] % 8;
    if ((raw >> i) & 1ULL) {
      data[byte] = static_cast<std::uint8_t>(data[byte] | (1U << bit));
    } else {
      data[byte] = static_cast<std::uint8_t>(data[byte] & ~(1U << bit));
    }
  }
}

std::uint64_t extract_raw(const std::array<std::uint8_t, 8>& data,
                          const SignalSpec& spec) {
  const std::vector<std::size_t> positions = bit_positions(spec);
  std::uint64_t raw = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const std::size_t byte = positions[i] / 8;
    const std::size_t bit = positions[i] % 8;
    if ((data[byte] >> bit) & 1U) raw |= 1ULL << i;
  }
  return raw;
}

void MessageSpec::validate() const {
  require(dlc <= 8, "MessageSpec " + name + ": dlc must be 0..8");
  require(id <= (extended ? kMaxExtendedId : kMaxBaseId),
          "MessageSpec " + name + ": identifier out of range");
  std::set<std::size_t> used;
  for (const SignalSpec& s : signals) {
    s.validate();
    for (std::size_t pos : bit_positions(s)) {
      require(pos < static_cast<std::size_t>(dlc) * 8,
              "MessageSpec " + name + ": signal " + s.name + " exceeds dlc");
      require(used.insert(pos).second,
              "MessageSpec " + name + ": signal " + s.name + " overlaps another");
    }
  }
}

CanFrame MessageSpec::pack(const std::vector<double>& physical) const {
  require(physical.size() == signals.size(),
          "MessageSpec " + name + ": value count mismatch");
  CanFrame frame;
  frame.id = id;
  frame.extended = extended;
  frame.dlc = dlc;
  for (std::size_t i = 0; i < signals.size(); ++i)
    insert_raw(frame.data, signals[i], signals[i].encode(physical[i]));
  return frame;
}

std::vector<double> MessageSpec::unpack(const CanFrame& frame) const {
  require(frame.id == id && frame.extended == extended,
          "MessageSpec " + name + ": frame identifier mismatch");
  require(frame.dlc == dlc, "MessageSpec " + name + ": frame dlc mismatch");
  std::vector<double> values;
  values.reserve(signals.size());
  for (const SignalSpec& s : signals)
    values.push_back(s.decode(extract_raw(frame.data, s)));
  return values;
}

}  // namespace cpsguard::can
