#include "can/bus.hpp"

#include <algorithm>
#include <limits>

#include "util/status.hpp"

namespace cpsguard::can {

Bus::Bus(double bitrate_bps) : bitrate_(bitrate_bps) {
  util::require(bitrate_bps > 0.0, "Bus: bitrate must be positive");
}

double Bus::frame_seconds(const CanFrame& frame) const {
  return static_cast<double>(frame.wire_bits()) / bitrate_;
}

BusReport Bus::transmit(std::vector<FrameRequest> requests) const {
  for (const FrameRequest& r : requests) r.frame.validate();

  // Stable order: release time, then submission order (std::stable_sort).
  std::stable_sort(requests.begin(), requests.end(),
                   [](const FrameRequest& a, const FrameRequest& b) {
                     return a.release_time < b.release_time;
                   });

  BusReport report;
  std::vector<bool> sent(requests.size(), false);
  std::size_t remaining = requests.size();
  double now = requests.empty() ? 0.0 : requests.front().release_time;

  while (remaining > 0) {
    // Pending = released and unsent.  If none, jump to the next release.
    std::size_t winner = requests.size();
    double next_release = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (sent[i]) continue;
      if (requests[i].release_time > now) {
        next_release = std::min(next_release, requests[i].release_time);
        continue;
      }
      if (winner == requests.size() ||
          arbitrates_before(requests[i].frame, requests[winner].frame)) {
        winner = i;
      }
    }
    if (winner == requests.size()) {
      now = next_release;
      continue;
    }

    TransmittedFrame tx;
    tx.frame = requests[winner].frame;
    tx.release_time = requests[winner].release_time;
    tx.start_time = now;
    tx.end_time = now + frame_seconds(tx.frame);
    report.busy_seconds += tx.end_time - tx.start_time;
    report.worst_latency = std::max(report.worst_latency, tx.latency());
    now = tx.end_time;
    report.frames.push_back(tx);
    sent[winner] = true;
    --remaining;
  }

  if (!report.frames.empty()) {
    const double first = std::min_element(report.frames.begin(), report.frames.end(),
                                          [](const auto& a, const auto& b) {
                                            return a.release_time < b.release_time;
                                          })
                             ->release_time;
    report.makespan_seconds = now - first;
  }
  return report;
}

}  // namespace cpsguard::can
