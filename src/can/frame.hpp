// frame.hpp — CAN 2.0 data frames.
//
// The paper's attack surface is the in-vehicle CAN bus: yaw rate, lateral
// acceleration and steering angle reach the VSC through CAN messages a
// man-in-the-middle can rewrite.  This module models the bus at the frame
// level so experiments exercise the *real* pipeline — physical value →
// DBC-style signal encoding → 8-byte payload → arbitration → decode — with
// its quantization and timing effects, instead of handing the controller
// ideal doubles.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace cpsguard::can {

/// Largest 11-bit (base) and 29-bit (extended) identifiers.
inline constexpr std::uint32_t kMaxBaseId = 0x7FF;
inline constexpr std::uint32_t kMaxExtendedId = 0x1FFFFFFF;

/// One CAN 2.0 data frame (classic CAN, up to 8 payload bytes).
struct CanFrame {
  std::uint32_t id = 0;          ///< arbitration identifier
  bool extended = false;         ///< 29-bit identifier flag
  std::uint8_t dlc = 8;          ///< payload length 0..8
  std::array<std::uint8_t, 8> data{};  ///< payload, data[dlc..] must be 0

  /// Throws InvalidArgument on out-of-range id / dlc.
  void validate() const;

  /// Worst-case wire length in bits including stuffing (classic CAN frame
  /// layout; stuffing estimated at the standard worst case of one stuff bit
  /// per 4 payload/header bits).
  std::size_t wire_bits() const;

  std::string str() const;
};

/// True when `lhs` wins arbitration against `rhs` (lower identifier wins;
/// base format beats extended at equal leading bits — we use the common
/// simplification of comparing the numeric id, base before extended on tie).
bool arbitrates_before(const CanFrame& lhs, const CanFrame& rhs);

}  // namespace cpsguard::can
