// cpsguard.hpp — umbrella header for the cpsguard library.
//
// cpsguard reproduces "Formal Synthesis of Monitoring and Detection Systems
// for Secure CPS Implementations" (Koley et al., DATE 2020): residue-based
// attack detectors with formally synthesized variable thresholds.
//
// Typical flow (see examples/quickstart.cpp):
//   1. look up a bundled experiment in scenario::Registry::instance() —
//      every models::CaseStudy is pre-registered with a family of default
//      scenarios ("vsc/far", "trajectory/roc", ...), next to the paper
//      fixtures ("table1", "fig2", "fig3", "quickstart");
//   2. execute it with scenario::ExperimentRunner — single run, Monte-Carlo
//      FAR, ROC sweep, noise floor, template search, or threshold/attack
//      synthesis, all driven through the sim::BatchRunner batch engine with
//      per-run RNG substreams (bit-identical at any thread count) — and
//      read the structured scenario::Report (JSON/CSV serializable).
//      Every Monte-Carlo protocol is two-phase: SIMULATE records the
//      residual traces once (detect::FarSimulation, NoiseFloorSamples,
//      RocResidues), then EVALUATE streams detector banks over them —
//      detectors are detect::OnlineDetector instances (reset()/step(z)),
//      compared N-at-a-time by detect::DetectorBank.  Simulation itself
//      runs through fused linalg::StepKernels (one pass per sampling
//      instant, dispatched to compile-time-specialized fixed-dimension
//      kernels for the registered case-study signatures, bit-identical to
//      the generic fallback), and when every detector in the bank reads
//      only the shared residual norm the simulate phase goes norm-only:
//      ||z_k|| is computed on the fly and no trace is materialized
//      (ClosedLoop::simulate_norms_into / sim::run_noise_norm_batch),
//      cutting per-run memory from O(steps·dim) to O(steps).  Norm-only
//      batches additionally advance in SIMD lane groups: runs are
//      partitioned W at a time through the structure-of-arrays
//      linalg::BatchStepKernel (run axis = vector lane axis, matrices
//      broadcast across lanes), each lane replaying the scalar operation
//      sequence bit for bit, with sim::set_lane_width / --lanes as the
//      kill switch (1) or override; a pfc filter decidable from the final
//      plant state (synth::ReachCriterion, the paper's reach criterion)
//      streams through detect::FarSetup::pfc_final so the FAR protocol
//      stays norm-only with the filter active.  All intra-process
//      parallelism — Monte-Carlo batch slots, concurrent campaign
//      simulation groups, serve shard workers — runs on one persistent
//      process-wide work-stealing pool (sim::Scheduler, per-worker deques
//      + fork/join sim::TaskGroup whose wait() helps drain its own group,
//      so nested submission cannot deadlock); work partitioning is
//      thread-count-independent, so results stay bit-identical at any
//      pool size, and CPSG_SCHEDULER=off (or --threads 1) falls back to
//      the pre-pool spawn-per-batch paths;
//   3. to cover a whole parameter space instead of one point, run a sweep
//      campaign from sweep::SweepRegistry::instance() ("table1_sweep",
//      "roc_sweep", ...) through sweep::CampaignEngine — the grid expands
//      from a declarative SweepSpec, cells are cached content-addressed
//      (re-runs recompute only changed cells), cells differing only on
//      detector axes share one simulated batch (simulation groups, keyed
//      by sweep::simulation_fingerprint), and execution shards over
//      machines and resumes after interruption, all bit-identical.
//      The fabric is fault-tolerant end to end: cache entries carry
//      embedded checksums (corrupt ones are quarantined and recomputed),
//      failing cells are retried under util::RetryPolicy and then recorded
//      without aborting their siblings, sweep::Coordinator supervises one
//      worker process per shard (heartbeat liveness, crash/hang relaunch
//      with backoff), and every failure path is rehearsable through the
//      deterministic util::fault injection registry;
//   4. to run detection as a service instead of replaying recorded traces,
//      open a detect::Session — a streaming handle over one scenario's
//      online detector bank (feed residuals or precomputed norms sample by
//      sample, read verdicts, snapshot()/restore() integrity-framed state
//      mid-stream with bit-identical resumption) — built from
//      scenario::make_session_blueprint(spec).  The cpsguard_serve binary
//      hosts many such sessions behind a length-framed TCP/unix-socket
//      protocol (serve/protocol.hpp documents the wire format,
//      detect/session.hpp the snapshot versioning): serve::SessionTable
//      is the sharded lock-striped session registry with LRU/TTL
//      eviction, serve::SessionStore persists every live session to a
//      crash-safe state dir (restored — corrupt entries quarantined — on
//      restart, so a kill -9 loses no verdict stream), serve::CanIngest
//      decodes raw CAN frames through can::signal_codec into residual
//      samples bit-identical to can::CanLoopTransport, serve::Client
//      heals flapping transports under util::RetryPolicy backoff, and
//      serve::run_local_load / bench/serve_throughput.cpp /
//      tools/serve_chaos.sh soak and chaos-test the whole stack;
//   5. for custom experiments, copy a spec and edit it as data (plant,
//      noise envelope, detector list, protocol), or drop to the layers
//      below: synth::AttackVectorSynthesizer (Algorithm 1),
//      synth::pivot_/stepwise_threshold_synthesis (Algorithms 2 & 3),
//      detect::evaluate_far, and codegen::write_detector_c for deployment.
// The cpsguard_cli binary exposes both registries as
//   cpsguard_cli list | describe <scenario> | run <scenario>
//   cpsguard_cli sweep list | describe | run | coordinate | merge
//                 | status | fsck
// and the cpsguard_serve binary exposes the streaming service as
//   cpsguard_serve serve | load | soak.
#pragma once

#include "attacks/search.hpp"
#include "attacks/templates.hpp"
#include "can/bus.hpp"
#include "can/frame.hpp"
#include "can/signal_codec.hpp"
#include "can/transport.hpp"
#include "codegen/c_emitter.hpp"
#include "control/closed_loop.hpp"
#include "control/kalman.hpp"
#include "control/lqr.hpp"
#include "control/lti.hpp"
#include "control/noise.hpp"
#include "control/norm.hpp"
#include "control/trace.hpp"
#include "detect/detector.hpp"
#include "detect/far.hpp"
#include "detect/noise_floor.hpp"
#include "detect/online.hpp"
#include "detect/roc.hpp"
#include "detect/session.hpp"
#include "detect/threshold.hpp"
#include "linalg/batch_kernel.hpp"
#include "linalg/decomp.hpp"
#include "linalg/expm.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rational.hpp"
#include "linalg/riccati.hpp"
#include "linalg/step_kernel.hpp"
#include "models/aircraft.hpp"
#include "models/case_study.hpp"
#include "models/dcmotor.hpp"
#include "models/lfc.hpp"
#include "models/quadtank.hpp"
#include "models/suspension.hpp"
#include "models/trajectory.hpp"
#include "models/vsc.hpp"
#include "models/vsc_can.hpp"
#include "monitor/monitor.hpp"
#include "reach/interval.hpp"
#include "reach/stealthy.hpp"
#include "reach/zonotope.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/service.hpp"
#include "scenario/spec.hpp"
#include "serve/client.hpp"
#include "serve/ingest.hpp"
#include "serve/load_generator.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session_store.hpp"
#include "serve/session_table.hpp"
#include "sim/batch.hpp"
#include "sim/config.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "solver/lp_backend.hpp"
#include "solver/problem.hpp"
#include "solver/simplex.hpp"
#include "solver/z3_backend.hpp"
#include "stl/criterion.hpp"
#include "stl/encode.hpp"
#include "stl/formula.hpp"
#include "stl/monitor.hpp"
#include "stl/parser.hpp"
#include "stl/semantics.hpp"
#include "stl/signal_expr.hpp"
#include "sweep/cache.hpp"
#include "sweep/campaign.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/registry.hpp"
#include "sweep/spec.hpp"
#include "sym/affine.hpp"
#include "sym/constraint.hpp"
#include "sym/unroller.hpp"
#include "synth/attack_synth.hpp"
#include "synth/spec.hpp"
#include "synth/threshold_synth.hpp"
#include "util/ascii_plot.hpp"
#include "util/bytes.hpp"
#include "util/csv.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/retry.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
