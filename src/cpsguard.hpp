// cpsguard.hpp — umbrella header for the cpsguard library.
//
// cpsguard reproduces "Formal Synthesis of Monitoring and Detection Systems
// for Secure CPS Implementations" (Koley et al., DATE 2020): residue-based
// attack detectors with formally synthesized variable thresholds.
//
// Typical flow (see examples/quickstart.cpp):
//   1. describe the plant (control::DiscreteLti) and design the loop
//      (control::LoopConfig::design) — or use a models::CaseStudy;
//   2. state the performance criterion (synth::ReachCriterion) and any
//      existing monitors (monitor::MonitorSet);
//   3. run synth::AttackVectorSynthesizer (Algorithm 1) to find stealthy
//      attacks, and synth::pivot_threshold_synthesis /
//      synth::stepwise_threshold_synthesis (Algorithms 2 & 3) to derive a
//      provably safe variable threshold;
//   4. evaluate false alarms with detect::evaluate_far and deploy via
//      codegen::emit_detector_c.
#pragma once

#include "attacks/search.hpp"
#include "attacks/templates.hpp"
#include "can/bus.hpp"
#include "can/frame.hpp"
#include "can/signal_codec.hpp"
#include "can/transport.hpp"
#include "codegen/c_emitter.hpp"
#include "control/closed_loop.hpp"
#include "control/kalman.hpp"
#include "control/lqr.hpp"
#include "control/lti.hpp"
#include "control/noise.hpp"
#include "control/norm.hpp"
#include "control/trace.hpp"
#include "detect/detector.hpp"
#include "detect/far.hpp"
#include "detect/noise_floor.hpp"
#include "detect/roc.hpp"
#include "detect/threshold.hpp"
#include "linalg/decomp.hpp"
#include "linalg/expm.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rational.hpp"
#include "linalg/riccati.hpp"
#include "models/aircraft.hpp"
#include "models/case_study.hpp"
#include "models/dcmotor.hpp"
#include "models/lfc.hpp"
#include "models/quadtank.hpp"
#include "models/suspension.hpp"
#include "models/trajectory.hpp"
#include "models/vsc.hpp"
#include "models/vsc_can.hpp"
#include "monitor/monitor.hpp"
#include "reach/interval.hpp"
#include "reach/stealthy.hpp"
#include "reach/zonotope.hpp"
#include "sim/batch.hpp"
#include "sim/monte_carlo.hpp"
#include "solver/lp_backend.hpp"
#include "solver/problem.hpp"
#include "solver/simplex.hpp"
#include "solver/z3_backend.hpp"
#include "stl/criterion.hpp"
#include "stl/encode.hpp"
#include "stl/formula.hpp"
#include "stl/monitor.hpp"
#include "stl/parser.hpp"
#include "stl/semantics.hpp"
#include "stl/signal_expr.hpp"
#include "sym/affine.hpp"
#include "sym/constraint.hpp"
#include "sym/unroller.hpp"
#include "synth/attack_synth.hpp"
#include "synth/spec.hpp"
#include "synth/threshold_synth.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
