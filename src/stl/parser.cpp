#include "stl/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>

#include "util/status.hpp"

namespace cpsguard::stl {

namespace {

/// Hand-rolled recursive-descent parser.  Tokenization is folded into the
/// scanner: the grammar is small enough that a separate token stream would
/// only add indirection.
class Parser {
 public:
  // Owns a null-terminated copy: parse_number uses strtod, which needs a
  // terminator a string_view cannot promise.
  explicit Parser(std::string_view text) : owned_(text), text_(owned_) {}

  Formula parse_formula() {
    Formula f = parse_implication();
    skip_ws();
    if (!at_end()) fail("trailing input");
    return f;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream out;
    out << "stl::parse: " << message << " at position " << pos_ << " in \"" << text_
        << "\"";
    throw util::InvalidArgument(out.str());
  }

  bool at_end() const { return pos_ >= text_.size(); }

  char peek() const { return at_end() ? '\0' : text_[pos_]; }

  char peek_at(std::size_t offset) const {
    return pos_ + offset >= text_.size() ? '\0' : text_[pos_ + offset];
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool consume_word(std::string_view word) {
    skip_ws();
    if (text_.substr(pos_, word.size()) != word) return false;
    // Words must not run into an identifier tail (e.g. "true" vs "truex").
    const char next = peek_at(word.size());
    if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') return false;
    pos_ += word.size();
    return true;
  }

  void expect(char c, const char* context) {
    if (!consume(c)) fail(std::string("expected '") + c + "' " + context);
  }

  std::size_t parse_integer() {
    skip_ws();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("expected integer");
    std::size_t value = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      value = value * 10 + static_cast<std::size_t>(peek() - '0');
      ++pos_;
    }
    return value;
  }

  double parse_number() {
    skip_ws();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected number");
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  Window parse_window() {
    expect('[', "to open window");
    Window w;
    w.lo = parse_integer();
    expect(',', "between window bounds");
    w.hi = parse_integer();
    expect(']', "to close window");
    if (w.lo > w.hi) fail("window lo > hi");
    return w;
  }

  /// 'G', 'F', 'U', 'R' are operators only when followed by '['; otherwise
  /// they could be the head of nothing in this grammar (signals are
  /// lowercase), but be strict anyway.
  bool peek_temporal(char op) {
    skip_ws();
    if (peek() != op) return false;
    std::size_t look = pos_ + 1;
    while (look < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[look])))
      ++look;
    return look < text_.size() && text_[look] == '[';
  }

  std::optional<SignalExpr> try_parse_signal() {
    skip_ws();
    SignalKind kind;
    std::size_t name_len = 0;
    if (text_.substr(pos_, 4) == "xhat") {
      kind = SignalKind::kEstimate;
      name_len = 4;
    } else if (peek() == 'x') {
      kind = SignalKind::kState;
      name_len = 1;
    } else if (peek() == 'y') {
      kind = SignalKind::kOutput;
      name_len = 1;
    } else if (peek() == 'u') {
      kind = SignalKind::kInput;
      name_len = 1;
    } else if (peek() == 'z') {
      kind = SignalKind::kResidue;
      name_len = 1;
    } else {
      return std::nullopt;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek_at(name_len))))
      return std::nullopt;
    pos_ += name_len;
    const std::size_t index = parse_integer();
    return SignalExpr(kind, index);
  }

  SignalExpr parse_term() {
    skip_ws();
    if (consume('-')) {
      SignalExpr inner = parse_term();
      return -inner;
    }
    if (auto sig = try_parse_signal()) {
      SignalExpr e = *sig;
      skip_ws();
      if (consume('*')) e *= parse_number();
      return e;
    }
    const double value = parse_number();
    skip_ws();
    if (consume('*')) {
      auto sig = try_parse_signal();
      if (!sig) fail("expected signal after '*'");
      return value * *sig;
    }
    return SignalExpr(value);
  }

  SignalExpr parse_sum() {
    SignalExpr e = parse_term();
    for (;;) {
      skip_ws();
      if (consume('+')) {
        e += parse_term();
      } else if (peek() == '-' && peek_at(1) != '>') {
        ++pos_;
        e -= parse_term();
      } else {
        return e;
      }
    }
  }

  std::optional<sym::RelOp> try_parse_relop() {
    skip_ws();
    if (text_.substr(pos_, 2) == "<=") { pos_ += 2; return sym::RelOp::kLe; }
    if (text_.substr(pos_, 2) == ">=") { pos_ += 2; return sym::RelOp::kGe; }
    if (text_.substr(pos_, 2) == "==") { pos_ += 2; return sym::RelOp::kEq; }
    if (text_.substr(pos_, 2) == "!=") { pos_ += 2; return sym::RelOp::kNe; }
    if (peek() == '<') { ++pos_; return sym::RelOp::kLt; }
    if (peek() == '>') { ++pos_; return sym::RelOp::kGt; }
    return std::nullopt;
  }

  Formula parse_atom() {
    skip_ws();
    if (consume_word("abs")) {
      expect('(', "after abs");
      SignalExpr inner = parse_sum();
      expect(')', "to close abs");
      const auto op = try_parse_relop();
      if (!op) fail("expected relational operator after abs(...)");
      SignalExpr rhs = parse_sum();
      if (!rhs.is_constant())
        fail("abs comparisons require a constant right-hand side");
      const double bound = rhs.constant();
      switch (*op) {
        case sym::RelOp::kLe:
        case sym::RelOp::kLt:
          return abs_le(inner, bound);
        case sym::RelOp::kGe:
        case sym::RelOp::kGt:
          return abs_ge(inner, bound);
        default:
          fail("abs comparisons support <=, <, >=, > only");
      }
    }
    SignalExpr lhs = parse_sum();
    const auto op = try_parse_relop();
    if (!op) fail("expected relational operator");
    SignalExpr rhs = parse_sum();
    return Formula::atom(lhs - rhs, *op);
  }

  Formula parse_unary() {
    skip_ws();
    if (consume('!')) return parse_unary().negate();
    if (peek_temporal('G')) {
      ++pos_;
      const Window w = parse_window();
      return Formula::globally(w, parse_unary());
    }
    if (peek_temporal('F')) {
      ++pos_;
      const Window w = parse_window();
      return Formula::eventually(w, parse_unary());
    }
    if (consume_word("true")) return Formula::constant(true);
    if (consume_word("false")) return Formula::constant(false);
    if (consume('(')) {
      Formula inner = parse_implication();
      expect(')', "to close group");
      return inner;
    }
    return parse_atom();
  }

  Formula parse_binary() {
    Formula lhs = parse_unary();
    if (peek_temporal('U')) {
      ++pos_;
      const Window w = parse_window();
      return Formula::until(w, std::move(lhs), parse_unary());
    }
    if (peek_temporal('R')) {
      ++pos_;
      const Window w = parse_window();
      return Formula::release(w, std::move(lhs), parse_unary());
    }
    return lhs;
  }

  Formula parse_conj() {
    std::vector<Formula> parts{parse_binary()};
    for (;;) {
      skip_ws();
      if (peek() == '&') {
        ++pos_;
        if (peek() == '&') ++pos_;
        parts.push_back(parse_binary());
      } else {
        break;
      }
    }
    return parts.size() == 1 ? parts.front() : Formula::conj(std::move(parts));
  }

  Formula parse_disj() {
    std::vector<Formula> parts{parse_conj()};
    for (;;) {
      skip_ws();
      if (peek() == '|') {
        ++pos_;
        if (peek() == '|') ++pos_;
        parts.push_back(parse_conj());
      } else {
        break;
      }
    }
    return parts.size() == 1 ? parts.front() : Formula::disj(std::move(parts));
  }

  Formula parse_implication() {
    Formula lhs = parse_disj();
    skip_ws();
    if (peek() == '-' && peek_at(1) == '>') {
      pos_ += 2;
      return Formula::implies(lhs, parse_implication());
    }
    return lhs;
  }

  std::string owned_;
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Formula parse(std::string_view text) { return Parser(text).parse_formula(); }

}  // namespace cpsguard::stl
