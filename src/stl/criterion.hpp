// criterion.hpp — STL formulas as synthesis performance criteria.
//
// Wraps a bounded STL formula as a synth::CriterionInterface so the whole
// pipeline — Algorithm 1 attack synthesis, Algorithms 2/3 threshold
// synthesis, the FAR protocol — runs against any linear STL pfc, not just
// the paper's reach property.  The attacker's goal becomes the NNF negation
// of the formula, encoded over the affine trace with a robustness margin.
#pragma once

#include <memory>

#include "stl/encode.hpp"
#include "stl/formula.hpp"
#include "stl/semantics.hpp"
#include "synth/spec.hpp"

namespace cpsguard::stl {

/// Evaluates/encodes `formula` at instant 0 of the trace.
class StlCriterion final : public synth::CriterionInterface {
 public:
  explicit StlCriterion(Formula formula);

  bool satisfied(const control::Trace& trace) const override;

  /// Robustness at instant 0 — positive iff satisfied (up to boundaries).
  double deviation(const control::Trace& trace) const override;

  sym::BoolExpr satisfied_expr(const sym::SymbolicTrace& trace) const override;
  sym::BoolExpr violated_expr(const sym::SymbolicTrace& trace,
                              double margin) const override;

  const Formula& formula() const { return formula_; }

  std::string describe() const override;

 private:
  Formula formula_;
  Formula negation_;  // cached NNF negation (the attacker's goal)
};

/// Convenience: wraps a formula into the type-erased synth::Criterion.
synth::Criterion criterion(Formula formula);

}  // namespace cpsguard::stl
