#include "stl/encode.hpp"

#include "util/status.hpp"

namespace cpsguard::stl {

using sym::BoolExpr;
using sym::RelOp;

namespace {

BoolExpr encode_atom(const Atom& a, const sym::SymbolicTrace& trace, std::size_t t,
                     double margin) {
  const sym::AffineExpr e = a.expr.evaluate(trace, t);
  if (margin == 0.0) return BoolExpr::lit(e, a.op);
  // Satisfaction must be robust by the absolute slack m: the atom's
  // satisfaction region shrinks by m in the direction of its inequality.
  const double m = margin * a.expr.margin_scale();
  switch (a.op) {
    case RelOp::kLe: return BoolExpr::lit(e + m, RelOp::kLe);
    case RelOp::kLt: return BoolExpr::lit(e + m, RelOp::kLt);
    case RelOp::kGe: return BoolExpr::lit(e - m, RelOp::kGe);
    case RelOp::kGt: return BoolExpr::lit(e - m, RelOp::kGt);
    case RelOp::kEq:
      // Robust equality is unsatisfiable for m > 0; encode the conjunction,
      // which the backends simplify to false.
      return BoolExpr::conj(
          {BoolExpr::lit(e + m, RelOp::kLe), BoolExpr::lit(-e + m, RelOp::kLe)});
    case RelOp::kNe:
      return BoolExpr::disj(
          {BoolExpr::lit(e - m, RelOp::kGe), BoolExpr::lit(-e - m, RelOp::kGe)});
  }
  return BoolExpr::lit(e, a.op);
}

BoolExpr encode_rec(const Formula& f, const sym::SymbolicTrace& trace, std::size_t t,
                    double margin) {
  switch (f.kind()) {
    case FormulaKind::kTrue: return BoolExpr::constant(true);
    case FormulaKind::kFalse: return BoolExpr::constant(false);
    case FormulaKind::kAtom: return encode_atom(f.atom_ref(), trace, t, margin);
    case FormulaKind::kAnd: {
      std::vector<BoolExpr> parts;
      parts.reserve(f.children().size());
      for (const Formula& c : f.children())
        parts.push_back(encode_rec(c, trace, t, margin));
      return BoolExpr::conj(std::move(parts));
    }
    case FormulaKind::kOr: {
      std::vector<BoolExpr> parts;
      parts.reserve(f.children().size());
      for (const Formula& c : f.children())
        parts.push_back(encode_rec(c, trace, t, margin));
      return BoolExpr::disj(std::move(parts));
    }
    case FormulaKind::kGlobally: {
      const Window& w = f.window();
      std::vector<BoolExpr> parts;
      parts.reserve(w.hi - w.lo + 1);
      for (std::size_t k = t + w.lo; k <= t + w.hi; ++k)
        parts.push_back(encode_rec(f.children()[0], trace, k, margin));
      return BoolExpr::conj(std::move(parts));
    }
    case FormulaKind::kEventually: {
      const Window& w = f.window();
      std::vector<BoolExpr> parts;
      parts.reserve(w.hi - w.lo + 1);
      for (std::size_t k = t + w.lo; k <= t + w.hi; ++k)
        parts.push_back(encode_rec(f.children()[0], trace, k, margin));
      return BoolExpr::disj(std::move(parts));
    }
    case FormulaKind::kUntil: {
      const Window& w = f.window();
      std::vector<BoolExpr> witnesses;
      for (std::size_t k = t + w.lo; k <= t + w.hi; ++k) {
        std::vector<BoolExpr> parts;
        parts.push_back(encode_rec(f.children()[1], trace, k, margin));
        for (std::size_t j = t; j < k; ++j)
          parts.push_back(encode_rec(f.children()[0], trace, j, margin));
        witnesses.push_back(BoolExpr::conj(std::move(parts)));
      }
      return BoolExpr::disj(std::move(witnesses));
    }
    case FormulaKind::kRelease: {
      const Window& w = f.window();
      std::vector<BoolExpr> obligations;
      for (std::size_t k = t + w.lo; k <= t + w.hi; ++k) {
        std::vector<BoolExpr> parts;
        parts.push_back(encode_rec(f.children()[1], trace, k, margin));
        for (std::size_t j = t; j < k; ++j)
          parts.push_back(encode_rec(f.children()[0], trace, j, margin));
        obligations.push_back(BoolExpr::disj(std::move(parts)));
      }
      return BoolExpr::conj(std::move(obligations));
    }
  }
  return BoolExpr::constant(true);
}

}  // namespace

BoolExpr encode(const Formula& f, const sym::SymbolicTrace& trace, std::size_t t,
                const EncodeOptions& options) {
  util::require(trace.steps() > 0, "stl::encode: empty symbolic trace");
  // Fail fast with a clear message; the per-atom range checks inside
  // SignalExpr::evaluate are the precise guard.
  util::require(t + f.depth() <= trace.x.size() - 1,
                "stl::encode: formula depth " + std::to_string(f.depth()) +
                    " at instant " + std::to_string(t) +
                    " exceeds the unrolled horizon");
  return encode_rec(f, trace, t, options.margin);
}

}  // namespace cpsguard::stl
