#include "stl/formula.hpp"

#include <algorithm>
#include <sstream>

#include "util/status.hpp"

namespace cpsguard::stl {

using util::require;

std::string Window::str() const {
  std::ostringstream out;
  out << "[" << lo << "," << hi << "]";
  return out.str();
}

std::string Atom::str() const {
  std::ostringstream out;
  out << expr.str() << " " << sym::rel_name(op) << " 0";
  return out.str();
}

std::string formula_kind_name(FormulaKind kind) {
  switch (kind) {
    case FormulaKind::kTrue: return "true";
    case FormulaKind::kFalse: return "false";
    case FormulaKind::kAtom: return "atom";
    case FormulaKind::kAnd: return "and";
    case FormulaKind::kOr: return "or";
    case FormulaKind::kGlobally: return "G";
    case FormulaKind::kEventually: return "F";
    case FormulaKind::kUntil: return "U";
    case FormulaKind::kRelease: return "R";
  }
  return "?";
}

struct Formula::Node {
  FormulaKind kind = FormulaKind::kTrue;
  Atom atom;                       // kAtom
  std::vector<Formula> children;   // kAnd/kOr (n-ary), temporal (1 or 2)
  Window window;                   // temporal operators
};

namespace {

std::shared_ptr<const Formula::Node> make_node(Formula::Node node) {
  return std::make_shared<const Formula::Node>(std::move(node));
}

}  // namespace

Formula::Formula() : Formula(constant(true)) {}

Formula::Formula(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Formula Formula::constant(bool value) {
  Node n;
  n.kind = value ? FormulaKind::kTrue : FormulaKind::kFalse;
  return Formula(make_node(std::move(n)));
}

Formula Formula::atom(Atom a) {
  Node n;
  n.kind = FormulaKind::kAtom;
  n.atom = std::move(a);
  return Formula(make_node(std::move(n)));
}

Formula Formula::atom(SignalExpr expr, sym::RelOp op) {
  return atom(Atom{std::move(expr), op});
}

namespace {

Formula make_nary(FormulaKind kind, std::vector<Formula> children) {
  const bool is_and = kind == FormulaKind::kAnd;
  std::vector<Formula> flat;
  for (Formula& c : children) {
    if (c.kind() == FormulaKind::kTrue) {
      if (!is_and) return Formula::constant(true);
      continue;  // neutral for AND
    }
    if (c.kind() == FormulaKind::kFalse) {
      if (is_and) return Formula::constant(false);
      continue;  // neutral for OR
    }
    if (c.kind() == kind) {
      for (const Formula& gc : c.children()) flat.push_back(gc);
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return Formula::constant(is_and);
  if (flat.size() == 1) return flat.front();
  return is_and ? Formula::conj(std::move(flat)) : Formula::disj(std::move(flat));
}

}  // namespace

Formula Formula::conj(std::vector<Formula> children) {
  // Fast path used by make_nary once simplified: build the node directly
  // when no simplification applies.
  bool needs_simplify = children.size() < 2;
  for (const Formula& c : children) {
    if (c.is_constant() || c.kind() == FormulaKind::kAnd) {
      needs_simplify = true;
      break;
    }
  }
  if (needs_simplify) return make_nary(FormulaKind::kAnd, std::move(children));
  Node n;
  n.kind = FormulaKind::kAnd;
  n.children = std::move(children);
  return Formula(make_node(std::move(n)));
}

Formula Formula::disj(std::vector<Formula> children) {
  bool needs_simplify = children.size() < 2;
  for (const Formula& c : children) {
    if (c.is_constant() || c.kind() == FormulaKind::kOr) {
      needs_simplify = true;
      break;
    }
  }
  if (needs_simplify) return make_nary(FormulaKind::kOr, std::move(children));
  Node n;
  n.kind = FormulaKind::kOr;
  n.children = std::move(children);
  return Formula(make_node(std::move(n)));
}

Formula Formula::globally(Window w, Formula child) {
  require(w.lo <= w.hi, "Formula::globally: window lo > hi");
  if (child.is_constant()) return child;
  Node n;
  n.kind = FormulaKind::kGlobally;
  n.window = w;
  n.children = {std::move(child)};
  return Formula(make_node(std::move(n)));
}

Formula Formula::eventually(Window w, Formula child) {
  require(w.lo <= w.hi, "Formula::eventually: window lo > hi");
  if (child.is_constant()) return child;
  Node n;
  n.kind = FormulaKind::kEventually;
  n.window = w;
  n.children = {std::move(child)};
  return Formula(make_node(std::move(n)));
}

Formula Formula::until(Window w, Formula lhs, Formula rhs) {
  require(w.lo <= w.hi, "Formula::until: window lo > hi");
  Node n;
  n.kind = FormulaKind::kUntil;
  n.window = w;
  n.children = {std::move(lhs), std::move(rhs)};
  return Formula(make_node(std::move(n)));
}

Formula Formula::release(Window w, Formula lhs, Formula rhs) {
  require(w.lo <= w.hi, "Formula::release: window lo > hi");
  Node n;
  n.kind = FormulaKind::kRelease;
  n.window = w;
  n.children = {std::move(lhs), std::move(rhs)};
  return Formula(make_node(std::move(n)));
}

Formula Formula::implies(const Formula& lhs, Formula rhs) {
  return disj({lhs.negate(), std::move(rhs)});
}

FormulaKind Formula::kind() const { return node_->kind; }

bool Formula::is_constant() const {
  return node_->kind == FormulaKind::kTrue || node_->kind == FormulaKind::kFalse;
}

bool Formula::constant_value() const {
  require(is_constant(), "Formula::constant_value: not a constant");
  return node_->kind == FormulaKind::kTrue;
}

const Atom& Formula::atom_ref() const {
  require(node_->kind == FormulaKind::kAtom, "Formula::atom_ref: not an atom");
  return node_->atom;
}

const std::vector<Formula>& Formula::children() const { return node_->children; }

const Window& Formula::window() const {
  require(node_->kind == FormulaKind::kGlobally ||
              node_->kind == FormulaKind::kEventually ||
              node_->kind == FormulaKind::kUntil ||
              node_->kind == FormulaKind::kRelease,
          "Formula::window: not a temporal node");
  return node_->window;
}

Formula Formula::negate() const {
  switch (node_->kind) {
    case FormulaKind::kTrue: return constant(false);
    case FormulaKind::kFalse: return constant(true);
    case FormulaKind::kAtom: return atom(node_->atom.negated());
    case FormulaKind::kAnd: {
      std::vector<Formula> negated;
      negated.reserve(node_->children.size());
      for (const Formula& c : node_->children) negated.push_back(c.negate());
      return disj(std::move(negated));
    }
    case FormulaKind::kOr: {
      std::vector<Formula> negated;
      negated.reserve(node_->children.size());
      for (const Formula& c : node_->children) negated.push_back(c.negate());
      return conj(std::move(negated));
    }
    case FormulaKind::kGlobally:
      return eventually(node_->window, node_->children[0].negate());
    case FormulaKind::kEventually:
      return globally(node_->window, node_->children[0].negate());
    case FormulaKind::kUntil:
      return release(node_->window, node_->children[0].negate(),
                     node_->children[1].negate());
    case FormulaKind::kRelease:
      return until(node_->window, node_->children[0].negate(),
                   node_->children[1].negate());
  }
  return constant(true);
}

std::size_t Formula::depth() const {
  switch (node_->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
      return 0;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::size_t d = 0;
      for (const Formula& c : node_->children) d = std::max(d, c.depth());
      return d;
    }
    case FormulaKind::kGlobally:
    case FormulaKind::kEventually:
      return node_->window.hi + node_->children[0].depth();
    case FormulaKind::kUntil:
    case FormulaKind::kRelease: {
      // psi can be required at t + hi; phi at instants strictly before the
      // witnessing k, i.e. up to t + hi - 1.
      const std::size_t lhs_depth =
          node_->window.hi == 0
              ? node_->children[0].depth()
              : node_->window.hi - 1 + node_->children[0].depth();
      const std::size_t rhs_depth = node_->window.hi + node_->children[1].depth();
      return std::max(lhs_depth, rhs_depth);
    }
  }
  return 0;
}

std::size_t Formula::atom_count() const {
  switch (node_->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return 0;
    case FormulaKind::kAtom:
      return 1;
    default: {
      std::size_t total = 0;
      for (const Formula& c : node_->children) total += c.atom_count();
      return total;
    }
  }
}

std::string Formula::str() const {
  std::ostringstream out;
  switch (node_->kind) {
    case FormulaKind::kTrue: out << "true"; break;
    case FormulaKind::kFalse: out << "false"; break;
    case FormulaKind::kAtom: out << node_->atom.str(); break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const char* sep = node_->kind == FormulaKind::kAnd ? " & " : " | ";
      out << "(";
      for (std::size_t i = 0; i < node_->children.size(); ++i) {
        if (i) out << sep;
        out << node_->children[i].str();
      }
      out << ")";
      break;
    }
    case FormulaKind::kGlobally:
    case FormulaKind::kEventually:
      out << formula_kind_name(node_->kind) << node_->window.str() << "("
          << node_->children[0].str() << ")";
      break;
    case FormulaKind::kUntil:
    case FormulaKind::kRelease:
      out << "(" << node_->children[0].str() << " " << formula_kind_name(node_->kind)
          << node_->window.str() << " " << node_->children[1].str() << ")";
      break;
  }
  return out.str();
}

Formula abs_le(const SignalExpr& expr, double bound) {
  return Formula::conj({Formula::atom(expr - bound, sym::RelOp::kLe),
                        Formula::atom(-expr - bound, sym::RelOp::kLe)});
}

Formula abs_ge(const SignalExpr& expr, double bound) {
  return Formula::disj({Formula::atom(expr - bound, sym::RelOp::kGe),
                        Formula::atom(-expr - bound, sym::RelOp::kGe)});
}

Formula operator<=(const SignalExpr& lhs, double rhs) {
  return Formula::atom(lhs - rhs, sym::RelOp::kLe);
}
Formula operator<(const SignalExpr& lhs, double rhs) {
  return Formula::atom(lhs - rhs, sym::RelOp::kLt);
}
Formula operator>=(const SignalExpr& lhs, double rhs) {
  return Formula::atom(lhs - rhs, sym::RelOp::kGe);
}
Formula operator>(const SignalExpr& lhs, double rhs) {
  return Formula::atom(lhs - rhs, sym::RelOp::kGt);
}
Formula operator<=(const SignalExpr& lhs, const SignalExpr& rhs) {
  return Formula::atom(lhs - rhs, sym::RelOp::kLe);
}
Formula operator<(const SignalExpr& lhs, const SignalExpr& rhs) {
  return Formula::atom(lhs - rhs, sym::RelOp::kLt);
}
Formula operator>=(const SignalExpr& lhs, const SignalExpr& rhs) {
  return Formula::atom(lhs - rhs, sym::RelOp::kGe);
}
Formula operator>(const SignalExpr& lhs, const SignalExpr& rhs) {
  return Formula::atom(lhs - rhs, sym::RelOp::kGt);
}

Formula operator&&(const Formula& lhs, const Formula& rhs) {
  return Formula::conj({lhs, rhs});
}
Formula operator||(const Formula& lhs, const Formula& rhs) {
  return Formula::disj({lhs, rhs});
}
Formula operator!(const Formula& f) { return f.negate(); }

}  // namespace cpsguard::stl
