// signal_expr.hpp — linear expressions over closed-loop trace quantities.
//
// STL atoms compare a *linear* combination of trace signals at the current
// sampling instant against zero.  Linearity is deliberate: it keeps every
// bounded STL formula expressible as a sym::BoolExpr over the affine
// unrolled trace, so the whole synthesis pipeline (Algorithms 1-3) accepts
// STL performance criteria without leaving QF_LRA.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "control/trace.hpp"
#include "sym/affine.hpp"
#include "sym/unroller.hpp"

namespace cpsguard::stl {

/// Which closed-loop signal a term references.
enum class SignalKind {
  kState,     ///< plant state x_k (valid indices 0..T)
  kEstimate,  ///< observer estimate x̂_k (valid indices 0..T)
  kOutput,    ///< (possibly attacked) measurement y_k (0..T-1)
  kInput,     ///< control input u_k (0..T-1)
  kResidue,   ///< residue z_k = y_k - ŷ_k (0..T-1)
};

std::string signal_kind_name(SignalKind kind);

/// coeff * signal[index] evaluated at the formula's current instant.
struct SignalTerm {
  SignalKind kind = SignalKind::kState;
  std::size_t index = 0;
  double coeff = 1.0;
};

/// constant + sum of terms; the building block of STL atoms.
class SignalExpr {
 public:
  SignalExpr() = default;
  /// Constant expression.
  explicit SignalExpr(double constant) : constant_(constant) {}
  /// Single-term expression.
  SignalExpr(SignalKind kind, std::size_t index, double coeff = 1.0);

  const std::vector<SignalTerm>& terms() const { return terms_; }
  double constant() const { return constant_; }
  bool is_constant() const { return terms_.empty(); }

  SignalExpr& operator+=(const SignalExpr& rhs);
  SignalExpr& operator-=(const SignalExpr& rhs);
  SignalExpr& operator*=(double s);
  SignalExpr& operator+=(double c) { constant_ += c; return *this; }
  SignalExpr& operator-=(double c) { constant_ -= c; return *this; }

  /// Largest instant at which the expression can be evaluated on `trace`
  /// (state/estimate terms extend one step past the last sampling instant).
  std::size_t max_instant(const control::Trace& trace) const;
  std::size_t max_instant(const sym::SymbolicTrace& trace) const;

  /// Concrete value at instant k.  Throws InvalidArgument past max_instant.
  double evaluate(const control::Trace& trace, std::size_t k) const;

  /// Affine form over the solver variables at instant k.
  sym::AffineExpr evaluate(const sym::SymbolicTrace& trace, std::size_t k) const;

  /// Scale used to turn relative robustness margins into absolute slack:
  /// max(|constant|, max |coeff|, 1).
  double margin_scale() const;

  std::string str() const;

 private:
  std::vector<SignalTerm> terms_;
  double constant_ = 0.0;
};

SignalExpr operator+(SignalExpr lhs, const SignalExpr& rhs);
SignalExpr operator-(SignalExpr lhs, const SignalExpr& rhs);
SignalExpr operator*(double s, SignalExpr e);
SignalExpr operator*(SignalExpr e, double s);
SignalExpr operator-(SignalExpr e);
SignalExpr operator+(SignalExpr lhs, double c);
SignalExpr operator-(SignalExpr lhs, double c);
SignalExpr operator+(double c, SignalExpr rhs);
SignalExpr operator-(double c, SignalExpr rhs);

/// Convenience constructors mirroring the parser's signal names.
SignalExpr state(std::size_t index);
SignalExpr estimate(std::size_t index);
SignalExpr output(std::size_t index);
SignalExpr input(std::size_t index);
SignalExpr residue(std::size_t index);

}  // namespace cpsguard::stl
