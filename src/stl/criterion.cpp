#include "stl/criterion.hpp"

namespace cpsguard::stl {

StlCriterion::StlCriterion(Formula formula)
    : formula_(std::move(formula)), negation_(formula_.negate()) {}

bool StlCriterion::satisfied(const control::Trace& trace) const {
  return holds(formula_, trace, 0);
}

double StlCriterion::deviation(const control::Trace& trace) const {
  return robustness(formula_, trace, 0);
}

sym::BoolExpr StlCriterion::satisfied_expr(const sym::SymbolicTrace& trace) const {
  return encode(formula_, trace, 0);
}

sym::BoolExpr StlCriterion::violated_expr(const sym::SymbolicTrace& trace,
                                          double margin) const {
  EncodeOptions options;
  options.margin = margin;
  return encode(negation_, trace, 0, options);
}

std::string StlCriterion::describe() const { return "stl(" + formula_.str() + ")"; }

synth::Criterion criterion(Formula formula) {
  return synth::Criterion(std::make_shared<StlCriterion>(std::move(formula)));
}

}  // namespace cpsguard::stl
