#include "stl/signal_expr.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/status.hpp"

namespace cpsguard::stl {

using util::require;

std::string signal_kind_name(SignalKind kind) {
  switch (kind) {
    case SignalKind::kState: return "x";
    case SignalKind::kEstimate: return "xhat";
    case SignalKind::kOutput: return "y";
    case SignalKind::kInput: return "u";
    case SignalKind::kResidue: return "z";
  }
  return "?";
}

SignalExpr::SignalExpr(SignalKind kind, std::size_t index, double coeff) {
  terms_.push_back(SignalTerm{kind, index, coeff});
}

SignalExpr& SignalExpr::operator+=(const SignalExpr& rhs) {
  for (const SignalTerm& t : rhs.terms_) {
    auto it = std::find_if(terms_.begin(), terms_.end(), [&](const SignalTerm& mine) {
      return mine.kind == t.kind && mine.index == t.index;
    });
    if (it != terms_.end()) {
      it->coeff += t.coeff;
    } else {
      terms_.push_back(t);
    }
  }
  constant_ += rhs.constant_;
  return *this;
}

SignalExpr& SignalExpr::operator-=(const SignalExpr& rhs) {
  SignalExpr negated = rhs;
  negated *= -1.0;
  return *this += negated;
}

SignalExpr& SignalExpr::operator*=(double s) {
  for (SignalTerm& t : terms_) t.coeff *= s;
  constant_ *= s;
  return *this;
}

namespace {

template <typename TraceT>
std::size_t kind_length(const TraceT& trace, SignalKind kind) {
  switch (kind) {
    case SignalKind::kState: return trace.x.size();
    case SignalKind::kEstimate: return trace.xhat.size();
    case SignalKind::kOutput: return trace.y.size();
    case SignalKind::kInput: return trace.u.size();
    case SignalKind::kResidue: return trace.z.size();
  }
  return 0;
}

template <typename TraceT>
std::size_t max_instant_impl(const std::vector<SignalTerm>& terms, const TraceT& trace) {
  // A constant expression is evaluable anywhere the trace has samples.
  std::size_t max_k = trace.z.empty() ? 0 : trace.z.size() - 1;
  bool first = true;
  for (const SignalTerm& t : terms) {
    const std::size_t len = kind_length(trace, t.kind);
    require(len > 0, "SignalExpr: trace has no samples for signal " +
                         signal_kind_name(t.kind));
    const std::size_t k = len - 1;
    max_k = first ? k : std::min(max_k, k);
    first = false;
  }
  return max_k;
}

}  // namespace

std::size_t SignalExpr::max_instant(const control::Trace& trace) const {
  return max_instant_impl(terms_, trace);
}

std::size_t SignalExpr::max_instant(const sym::SymbolicTrace& trace) const {
  return max_instant_impl(terms_, trace);
}

double SignalExpr::evaluate(const control::Trace& trace, std::size_t k) const {
  double value = constant_;
  for (const SignalTerm& t : terms_) {
    const std::vector<linalg::Vector>* series = nullptr;
    switch (t.kind) {
      case SignalKind::kState: series = &trace.x; break;
      case SignalKind::kEstimate: series = &trace.xhat; break;
      case SignalKind::kOutput: series = &trace.y; break;
      case SignalKind::kInput: series = &trace.u; break;
      case SignalKind::kResidue: series = &trace.z; break;
    }
    require(k < series->size(), "SignalExpr: instant " + std::to_string(k) +
                                    " out of range for signal " +
                                    signal_kind_name(t.kind));
    require(t.index < (*series)[k].size(),
            "SignalExpr: component " + std::to_string(t.index) +
                " out of range for signal " + signal_kind_name(t.kind));
    value += t.coeff * (*series)[k][t.index];
  }
  return value;
}

sym::AffineExpr SignalExpr::evaluate(const sym::SymbolicTrace& trace,
                                     std::size_t k) const {
  sym::AffineExpr value(trace.layout.num_vars(), constant_);
  for (const SignalTerm& t : terms_) {
    const std::vector<sym::AffineVec>* series = nullptr;
    switch (t.kind) {
      case SignalKind::kState: series = &trace.x; break;
      case SignalKind::kEstimate: series = &trace.xhat; break;
      case SignalKind::kOutput: series = &trace.y; break;
      case SignalKind::kInput: series = &trace.u; break;
      case SignalKind::kResidue: series = &trace.z; break;
    }
    require(k < series->size(), "SignalExpr: instant " + std::to_string(k) +
                                    " out of range for signal " +
                                    signal_kind_name(t.kind));
    require(t.index < (*series)[k].size(),
            "SignalExpr: component " + std::to_string(t.index) +
                " out of range for signal " + signal_kind_name(t.kind));
    value += t.coeff * (*series)[k][t.index];
  }
  return value;
}

double SignalExpr::margin_scale() const {
  double scale = std::max(std::abs(constant_), 1.0);
  for (const SignalTerm& t : terms_) scale = std::max(scale, std::abs(t.coeff));
  return scale;
}

std::string SignalExpr::str() const {
  std::ostringstream out;
  bool first = true;
  for (const SignalTerm& t : terms_) {
    if (t.coeff == 0.0) continue;
    if (!first) out << (t.coeff < 0.0 ? " - " : " + ");
    if (first && t.coeff < 0.0) out << "-";
    const double mag = std::abs(t.coeff);
    if (mag != 1.0) out << mag << "*";
    out << signal_kind_name(t.kind) << t.index;
    first = false;
  }
  if (first) {
    out << constant_;
  } else if (constant_ != 0.0) {
    out << (constant_ < 0.0 ? " - " : " + ") << std::abs(constant_);
  }
  return out.str();
}

SignalExpr operator+(SignalExpr lhs, const SignalExpr& rhs) { return lhs += rhs; }
SignalExpr operator-(SignalExpr lhs, const SignalExpr& rhs) { return lhs -= rhs; }
SignalExpr operator*(double s, SignalExpr e) { return e *= s; }
SignalExpr operator*(SignalExpr e, double s) { return e *= s; }
SignalExpr operator-(SignalExpr e) { return e *= -1.0; }
SignalExpr operator+(SignalExpr lhs, double c) { return lhs += c; }
SignalExpr operator-(SignalExpr lhs, double c) { return lhs -= c; }
SignalExpr operator+(double c, SignalExpr rhs) { return rhs += c; }
SignalExpr operator-(double c, SignalExpr rhs) {
  rhs *= -1.0;
  return rhs += c;
}

SignalExpr state(std::size_t index) { return SignalExpr(SignalKind::kState, index); }
SignalExpr estimate(std::size_t index) { return SignalExpr(SignalKind::kEstimate, index); }
SignalExpr output(std::size_t index) { return SignalExpr(SignalKind::kOutput, index); }
SignalExpr input(std::size_t index) { return SignalExpr(SignalKind::kInput, index); }
SignalExpr residue(std::size_t index) { return SignalExpr(SignalKind::kResidue, index); }

}  // namespace cpsguard::stl
