#include "stl/semantics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/status.hpp"

namespace cpsguard::stl {

namespace {

bool atom_holds(const Atom& a, const control::Trace& trace, std::size_t t) {
  const double v = a.expr.evaluate(trace, t);
  switch (a.op) {
    case sym::RelOp::kLe: return v <= 0.0;
    case sym::RelOp::kLt: return v < 0.0;
    case sym::RelOp::kGe: return v >= 0.0;
    case sym::RelOp::kGt: return v > 0.0;
    case sym::RelOp::kEq: return v == 0.0;
    case sym::RelOp::kNe: return v != 0.0;
  }
  return false;
}

double atom_robustness(const Atom& a, const control::Trace& trace, std::size_t t) {
  const double v = a.expr.evaluate(trace, t);
  switch (a.op) {
    case sym::RelOp::kLe:
    case sym::RelOp::kLt:
      return -v;
    case sym::RelOp::kGe:
    case sym::RelOp::kGt:
      return v;
    case sym::RelOp::kEq:
      return -std::abs(v);
    case sym::RelOp::kNe:
      return std::abs(v);
  }
  return 0.0;
}

}  // namespace

bool holds(const Formula& f, const control::Trace& trace, std::size_t t) {
  switch (f.kind()) {
    case FormulaKind::kTrue: return true;
    case FormulaKind::kFalse: return false;
    case FormulaKind::kAtom: return atom_holds(f.atom_ref(), trace, t);
    case FormulaKind::kAnd:
      return std::all_of(f.children().begin(), f.children().end(),
                         [&](const Formula& c) { return holds(c, trace, t); });
    case FormulaKind::kOr:
      return std::any_of(f.children().begin(), f.children().end(),
                         [&](const Formula& c) { return holds(c, trace, t); });
    case FormulaKind::kGlobally: {
      const Window& w = f.window();
      for (std::size_t k = t + w.lo; k <= t + w.hi; ++k)
        if (!holds(f.children()[0], trace, k)) return false;
      return true;
    }
    case FormulaKind::kEventually: {
      const Window& w = f.window();
      for (std::size_t k = t + w.lo; k <= t + w.hi; ++k)
        if (holds(f.children()[0], trace, k)) return true;
      return false;
    }
    case FormulaKind::kUntil: {
      const Window& w = f.window();
      for (std::size_t k = t + w.lo; k <= t + w.hi; ++k) {
        if (!holds(f.children()[1], trace, k)) continue;
        bool prefix_ok = true;
        for (std::size_t j = t; j < k; ++j) {
          if (!holds(f.children()[0], trace, j)) {
            prefix_ok = false;
            break;
          }
        }
        if (prefix_ok) return true;
      }
      return false;
    }
    case FormulaKind::kRelease: {
      const Window& w = f.window();
      for (std::size_t k = t + w.lo; k <= t + w.hi; ++k) {
        if (holds(f.children()[1], trace, k)) continue;
        bool released = false;
        for (std::size_t j = t; j < k; ++j) {
          if (holds(f.children()[0], trace, j)) {
            released = true;
            break;
          }
        }
        if (!released) return false;
      }
      return true;
    }
  }
  return false;
}

double robustness(const Formula& f, const control::Trace& trace, std::size_t t) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  switch (f.kind()) {
    case FormulaKind::kTrue: return kInf;
    case FormulaKind::kFalse: return -kInf;
    case FormulaKind::kAtom: return atom_robustness(f.atom_ref(), trace, t);
    case FormulaKind::kAnd: {
      double rho = kInf;
      for (const Formula& c : f.children())
        rho = std::min(rho, robustness(c, trace, t));
      return rho;
    }
    case FormulaKind::kOr: {
      double rho = -kInf;
      for (const Formula& c : f.children())
        rho = std::max(rho, robustness(c, trace, t));
      return rho;
    }
    case FormulaKind::kGlobally: {
      const Window& w = f.window();
      double rho = kInf;
      for (std::size_t k = t + w.lo; k <= t + w.hi; ++k)
        rho = std::min(rho, robustness(f.children()[0], trace, k));
      return rho;
    }
    case FormulaKind::kEventually: {
      const Window& w = f.window();
      double rho = -kInf;
      for (std::size_t k = t + w.lo; k <= t + w.hi; ++k)
        rho = std::max(rho, robustness(f.children()[0], trace, k));
      return rho;
    }
    case FormulaKind::kUntil: {
      const Window& w = f.window();
      double rho = -kInf;
      double prefix = kInf;  // min over rho(phi, j) for j in [t, k)
      for (std::size_t k = t; k <= t + w.hi; ++k) {
        if (k >= t + w.lo)
          rho = std::max(rho,
                         std::min(robustness(f.children()[1], trace, k), prefix));
        // phi is never referenced at the last window instant (prefixes are
        // strict), so skip it — the trace may end exactly at depth().
        if (k < t + w.hi)
          prefix = std::min(prefix, robustness(f.children()[0], trace, k));
      }
      return rho;
    }
    case FormulaKind::kRelease: {
      const Window& w = f.window();
      double rho = kInf;
      double prefix = -kInf;  // max over rho(phi, j) for j in [t, k)
      for (std::size_t k = t; k <= t + w.hi; ++k) {
        if (k >= t + w.lo)
          rho = std::min(rho,
                         std::max(robustness(f.children()[1], trace, k), prefix));
        if (k < t + w.hi)
          prefix = std::max(prefix, robustness(f.children()[0], trace, k));
      }
      return rho;
    }
  }
  return 0.0;
}

namespace {

/// Largest valid evaluation instant, or nullopt when none exists.
template <typename TraceT>
std::optional<std::size_t> max_instant_rec(const Formula& f,
                                           const TraceT& trace) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return trace.steps() == 0 ? std::optional<std::size_t>{}
                                : std::optional<std::size_t>{trace.steps() - 1};
    case FormulaKind::kAtom:
      return f.atom_ref().expr.max_instant(trace);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::optional<std::size_t> best;
      for (const Formula& c : f.children()) {
        const auto m = max_instant_rec(c, trace);
        if (!m) return std::nullopt;
        best = best ? std::min(*best, *m) : *m;
      }
      return best;
    }
    case FormulaKind::kGlobally:
    case FormulaKind::kEventually: {
      const auto child = max_instant_rec(f.children()[0], trace);
      if (!child || *child < f.window().hi) return std::nullopt;
      return *child - f.window().hi;
    }
    case FormulaKind::kUntil:
    case FormulaKind::kRelease: {
      const auto lhs = max_instant_rec(f.children()[0], trace);
      const auto rhs = max_instant_rec(f.children()[1], trace);
      if (!lhs || !rhs) return std::nullopt;
      if (*rhs < f.window().hi) return std::nullopt;
      const std::size_t rhs_limit = *rhs - f.window().hi;
      // phi is referenced up to (t + hi - 1) when hi > 0.
      if (f.window().hi == 0) return std::min(*lhs, rhs_limit);
      if (*lhs + 1 < f.window().hi) return std::nullopt;
      return std::min(*lhs + 1 - f.window().hi, rhs_limit);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::size_t> last_valid_instant(const Formula& f,
                                              const control::Trace& trace) {
  return max_instant_rec(f, trace);
}

std::optional<std::size_t> last_valid_instant(const Formula& f,
                                              const sym::SymbolicTrace& trace) {
  return max_instant_rec(f, trace);
}

}  // namespace cpsguard::stl
