// semantics.hpp — boolean and quantitative (robustness) STL semantics.
//
// Strict bounded-horizon semantics: evaluating `f` at instant `t` touches
// instants up to `t + f.depth()`; the trace must be long enough (checked,
// InvalidArgument otherwise).  There is no truncation — the encoder
// (stl/encode.hpp) uses identical index arithmetic, and a test suite holds
// the two faces together on random traces.
#pragma once

#include "control/trace.hpp"
#include "stl/formula.hpp"

namespace cpsguard::stl {

/// Boolean satisfaction of `f` on `trace` at instant `t` (default: 0).
bool holds(const Formula& f, const control::Trace& trace, std::size_t t = 0);

/// Quantitative robustness: positive when satisfied, negative when violated
/// (zero on the boundary; the sign convention matches holds() except on
/// measure-zero boundaries).
///   atom e<=0 : -e        atom e>=0 : e
///   and: min   or: max    G: min over window   F: max over window
///   until:  max_k min(rho(psi,k), min_{t<=j<k} rho(phi,j))
///   release dual.
double robustness(const Formula& f, const control::Trace& trace, std::size_t t = 0);

/// Largest instant at which `f` can be evaluated on `trace`
/// (i.e. max t with t + depth within every referenced signal's range).
/// Returns nullopt when the trace is too short even for t = 0.
std::optional<std::size_t> last_valid_instant(const Formula& f,
                                              const control::Trace& trace);

/// Same fit computation over the affine trace — StlMonitor uses it to keep
/// the concrete and symbolic faces aligned on window boundaries.
std::optional<std::size_t> last_valid_instant(const Formula& f,
                                              const sym::SymbolicTrace& trace);

}  // namespace cpsguard::stl
