#include "stl/monitor.hpp"

namespace cpsguard::stl {

StlMonitor::StlMonitor(Formula formula, std::string label)
    : formula_(std::move(formula)), label_(std::move(label)) {}

bool StlMonitor::violated(const control::Trace& trace, std::size_t k) const {
  const auto fit = last_valid_instant(formula_, trace);
  if (!fit || k > *fit) return false;  // window runs past the horizon
  return !holds(formula_, trace, k);
}

sym::BoolExpr StlMonitor::ok_expr(const sym::SymbolicTrace& trace, std::size_t k,
                                  double margin) const {
  const auto fit = last_valid_instant(formula_, trace);
  if (!fit || k > *fit) return sym::BoolExpr::constant(true);
  EncodeOptions options;
  options.margin = margin;
  return encode(formula_, trace, k, options);
}

std::string StlMonitor::describe() const {
  return "stl(" + (label_.empty() ? formula_.str() : label_) + ")";
}

std::unique_ptr<monitor::SensorMonitor> StlMonitor::clone() const {
  return std::make_unique<StlMonitor>(formula_, label_);
}

}  // namespace cpsguard::stl
