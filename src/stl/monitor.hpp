// monitor.hpp (stl) — STL formulas as plausibility monitors (mdc).
//
// The paper's monitoring system is a fixed menu (range, gradient, relation
// + dead zone).  StlMonitor generalizes the menu: any bounded linear STL
// formula evaluated per sampling instant becomes a SensorMonitor, so it
// composes with MonitorSet's dead-zone policy and enters Algorithm 1's
// stealthiness encoding exactly like the built-ins.  Example: "a yaw-rate
// spike must be followed by a lateral-acceleration response within 3
// samples" — a cross-sensor temporal sanity check none of the paper's
// monitors can express.
//
// Windowing semantics: the formula is evaluated at instant k over the
// samples k..k+depth.  Instants whose window runs past the horizon are
// treated as non-violating (the check needs data that does not exist yet),
// both concretely and in the symbolic encoding — the two faces stay
// aligned.
#pragma once

#include "monitor/monitor.hpp"
#include "stl/encode.hpp"
#include "stl/formula.hpp"
#include "stl/semantics.hpp"

namespace cpsguard::stl {

/// SensorMonitor adapter: instant k violates when `formula` is false at k.
class StlMonitor final : public monitor::SensorMonitor {
 public:
  explicit StlMonitor(Formula formula, std::string label = "");

  bool violated(const control::Trace& trace, std::size_t k) const override;
  sym::BoolExpr ok_expr(const sym::SymbolicTrace& trace, std::size_t k,
                        double margin = 0.0) const override;
  std::string describe() const override;
  std::unique_ptr<monitor::SensorMonitor> clone() const override;

  const Formula& formula() const { return formula_; }

 private:
  Formula formula_;
  std::string label_;
};

}  // namespace cpsguard::stl
