// encode.hpp — bounded STL to QF_LRA over the affine unrolled trace.
//
// Because STL atoms are linear over trace signals and the unrolled trace is
// affine over the attack variables, every bounded formula expands into a
// sym::BoolExpr whose literals are linear constraints over the same decision
// vector Algorithm 1 already solves for.  Window operators expand
// syntactically: G to a conjunction over the window, F to a disjunction,
// U/R to the standard prefix expansions.  The index arithmetic matches
// stl/semantics.cpp exactly; tests cross-check encode().holds(theta)
// against holds(concretized trace) on random assignments.
#pragma once

#include "stl/formula.hpp"
#include "sym/constraint.hpp"
#include "sym/unroller.hpp"

namespace cpsguard::stl {

/// Options controlling the robustness margin of the encoding.
struct EncodeOptions {
  /// Absolute slack added in favour of *violating* each atom: an atom
  /// "e <= 0" encodes as "e <= -margin * scale(atom)" — satisfaction must
  /// be robust by the margin.  Attack finders encode the negated pfc with a
  /// small margin so SAT models replay as genuine violations on the
  /// concrete implementation; certifiers use 0 (exact semantics).
  double margin = 0.0;
};

/// Encodes `f` evaluated at instant `t` over the affine trace.  Throws
/// InvalidArgument when t + f.depth() exceeds the unrolled horizon.
sym::BoolExpr encode(const Formula& f, const sym::SymbolicTrace& trace,
                     std::size_t t = 0, const EncodeOptions& options = {});

}  // namespace cpsguard::stl
