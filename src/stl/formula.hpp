// formula.hpp — bounded signal temporal logic (STL) over closed-loop traces.
//
// Grammar (discrete time, window bounds in sampling instants):
//   phi := true | false | atom
//        | !phi | phi & phi | phi | phi | phi -> phi
//        | G[a,b] phi | F[a,b] phi | phi U[a,b] phi | phi R[a,b] phi
// Atoms are linear predicates over trace signals (see SignalExpr), so every
// bounded formula unrolls into a sym::BoolExpr in QF_LRA — which is what
// lets an STL formula serve as the synthesis pipeline's pfc (stl::criterion)
// or as an extra monitoring constraint.
//
// Formulas are immutable DAG nodes behind shared_ptr; the Formula value type
// copies in O(1).  Negation is structural (NNF-preserving): the AST keeps a
// kNot node only around atoms, where it is resolved by flipping the
// relation.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "stl/signal_expr.hpp"
#include "sym/constraint.hpp"

namespace cpsguard::stl {

/// Inclusive discrete-time window [lo, hi] (in sampling instants).
struct Window {
  std::size_t lo = 0;
  std::size_t hi = 0;

  std::string str() const;
};

/// "expr op 0" — the linear predicates at STL leaves.
struct Atom {
  SignalExpr expr;
  sym::RelOp op = sym::RelOp::kLe;

  /// The complementary predicate (<= becomes >, ...).
  Atom negated() const { return Atom{expr, sym::negate(op)}; }

  std::string str() const;
};

class Formula;

/// Node kinds of the STL AST.
enum class FormulaKind {
  kTrue,
  kFalse,
  kAtom,
  kAnd,
  kOr,
  kGlobally,
  kEventually,
  kUntil,
  kRelease,
};

std::string formula_kind_name(FormulaKind kind);

/// Value-semantic handle on an immutable STL formula.
class Formula {
 public:
  /// Default-constructed formulas are `true`.
  Formula();

  static Formula constant(bool value);
  static Formula atom(Atom a);
  static Formula atom(SignalExpr expr, sym::RelOp op);
  /// n-ary conjunction / disjunction; constants are simplified away and
  /// nests of the same kind flattened.
  static Formula conj(std::vector<Formula> children);
  static Formula disj(std::vector<Formula> children);
  static Formula globally(Window w, Formula child);
  static Formula eventually(Window w, Formula child);
  /// until(w, phi, psi): psi holds at some k in [t+w.lo, t+w.hi] and phi
  /// holds at every j in [t, k).
  static Formula until(Window w, Formula lhs, Formula rhs);
  /// release(w, phi, psi): the dual of until — psi holds at every k in
  /// [t+w.lo, t+w.hi] unless phi released it at some earlier j in [t, k).
  static Formula release(Window w, Formula lhs, Formula rhs);
  /// lhs -> rhs, sugar for !lhs | rhs.
  static Formula implies(const Formula& lhs, Formula rhs);

  FormulaKind kind() const;
  bool is_constant() const;
  /// Constant value; only meaningful for kTrue/kFalse.
  bool constant_value() const;
  const Atom& atom_ref() const;
  const std::vector<Formula>& children() const;
  const Window& window() const;

  /// Structural negation in negation normal form (no kNot nodes; atoms are
  /// flipped, AND/OR and G/F and U/R are swapped).
  Formula negate() const;

  /// Number of sampling instants past the evaluation instant the formula
  /// can reference: evaluating at t touches instants up to t + depth().
  std::size_t depth() const;

  /// Number of atom leaves (diagnostics).
  std::size_t atom_count() const;

  std::string str() const;

  /// Opaque node type (defined in formula.cpp).
  struct Node;

 private:
  explicit Formula(std::shared_ptr<const Node> node);

  std::shared_ptr<const Node> node_;
};

/// abs(expr) <= bound (conjunction of two half-spaces).
Formula abs_le(const SignalExpr& expr, double bound);
/// abs(expr) >= bound (disjunction of two half-spaces).
Formula abs_ge(const SignalExpr& expr, double bound);

/// Comparison sugar producing atoms: expr <= c, expr >= c, ...
Formula operator<=(const SignalExpr& lhs, double rhs);
Formula operator<(const SignalExpr& lhs, double rhs);
Formula operator>=(const SignalExpr& lhs, double rhs);
Formula operator>(const SignalExpr& lhs, double rhs);
Formula operator<=(const SignalExpr& lhs, const SignalExpr& rhs);
Formula operator<(const SignalExpr& lhs, const SignalExpr& rhs);
Formula operator>=(const SignalExpr& lhs, const SignalExpr& rhs);
Formula operator>(const SignalExpr& lhs, const SignalExpr& rhs);

/// Boolean sugar.
Formula operator&&(const Formula& lhs, const Formula& rhs);
Formula operator||(const Formula& lhs, const Formula& rhs);
Formula operator!(const Formula& f);

}  // namespace cpsguard::stl
