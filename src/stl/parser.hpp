// parser.hpp — text syntax for STL formulas.
//
// Grammar (sample indices in windows; signals are x/xhat/y/u/z followed by
// a component index):
//
//   formula  := disj ( '->' formula )?                (implication, right-assoc)
//   disj     := conj ( ('|' | '||') conj )*
//   conj     := binary ( ('&' | '&&') binary )*
//   binary   := unary ( ('U' | 'R') window unary )?   (until / release)
//   unary    := '!' unary
//             | ('G' | 'F') window unary
//             | '(' formula ')'
//             | 'true' | 'false'
//             | atom
//   atom     := sum relop sum | 'abs' '(' sum ')' relop sum
//   sum      := term ( ('+' | '-') term )*
//   term     := number ( '*' signal )? | signal ( '*' number )? | '-' term
//   signal   := ('x' | 'xhat' | 'y' | 'u' | 'z') integer
//   window   := '[' integer ',' integer ']'
//   relop    := '<=' | '<' | '>=' | '>' | '==' | '!='
//
// Examples:
//   "G[0,49](abs(x0 - 0.25) <= 0.05)"
//   "y0 >= 0.1 -> F[0,7](abs(z0) <= 0.01)"
//   "(y1 <= 14.9) U[0,10] (x0 >= 0.2)"
//
// Parse errors throw util::InvalidArgument with position information.
#pragma once

#include <string>
#include <string_view>

#include "stl/formula.hpp"

namespace cpsguard::stl {

/// Parses `text` into a formula.
Formula parse(std::string_view text);

}  // namespace cpsguard::stl
