#include "detect/roc.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "control/noise.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/stats.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace cpsguard::detect {

using control::Signal;
using control::Trace;
using util::require;

double RocCurve::auc() const {
  if (points.size() < 2) return 0.0;
  std::vector<std::pair<double, double>> pts;  // (FAR, detection)
  pts.reserve(points.size() + 2);
  for (const RocPoint& p : points) pts.emplace_back(p.false_alarm_rate, p.detection_rate);
  // Anchor the curve at (0, min detection) and (1, max detection) so the
  // integral spans the whole FAR axis.
  std::sort(pts.begin(), pts.end());
  pts.insert(pts.begin(), {0.0, 0.0});
  pts.emplace_back(1.0, 1.0);
  double area = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double dx = pts[i].first - pts[i - 1].first;
    area += dx * 0.5 * (pts[i].second + pts[i - 1].second);
  }
  return area;
}

std::vector<double> log_scales(double lo, double hi, std::size_t count) {
  require(lo > 0.0 && hi > lo, "log_scales: need 0 < lo < hi");
  require(count >= 2, "log_scales: need at least two points");
  std::vector<double> scales;
  scales.reserve(count);
  const double step = std::log(hi / lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    scales.push_back(lo * std::exp(step * static_cast<double>(i)));
  return scales;
}

RocResidues RocResidues::compute(const RocWorkload& workload, control::Norm norm) {
  RocResidues out;
  out.norm = norm;
  out.benign.reserve(workload.benign.size());
  for (const Trace& tr : workload.benign) out.benign.push_back(tr.residue_norms(norm));
  out.attacked.reserve(workload.attacked.size());
  for (const Trace& tr : workload.attacked)
    out.attacked.push_back(tr.residue_norms(norm));
  return out;
}

RocCurve evaluate_roc(std::string name, const ThresholdVector& thresholds,
                      const RocWorkload& workload, const RocOptions& options) {
  require(!workload.benign.empty() && !workload.attacked.empty(),
          "evaluate_roc: workload must contain both benign and attacked runs");
  return evaluate_roc(std::move(name), thresholds,
                      RocResidues::compute(workload, options.norm), options);
}

RocCurve evaluate_roc(std::string name, const ThresholdVector& thresholds,
                      const RocResidues& residues, const RocOptions& options) {
  require(!thresholds.empty(), "evaluate_roc: empty threshold vector");
  require(!options.scales.empty(), "evaluate_roc: scale grid is empty");
  require(!residues.benign.empty() && !residues.attacked.empty(),
          "evaluate_roc: workload must contain both benign and attacked runs");

  for (double s : options.scales)
    require(s > 0.0, "evaluate_roc: scales must be positive");

  RocCurve curve;
  curve.name = std::move(name);
  curve.points.resize(options.scales.size());
  // Scales are independent sweeps over immutable norm series: fan them out
  // with results keyed by scale index.  The norms were computed once for
  // the whole workload; each scale only runs the threshold rule.
  const sim::BatchRunner runner(options.threads);
  runner.for_each(options.scales.size(), [&](std::size_t idx, std::size_t) {
    const double s = options.scales[idx];
    ThresholdVector scaled(thresholds.size());
    for (std::size_t k = 0; k < thresholds.size(); ++k)
      if (thresholds.is_set(k)) scaled.set(k, thresholds[k] * s);
    const ThresholdVector filled = scaled.filled();

    RocPoint point;
    point.scale = s;
    std::size_t false_alarms = 0;
    for (const std::vector<double>& norms : residues.benign) {
      for (std::size_t k = 0; k < norms.size(); ++k)
        if (threshold_alarm_at(filled, k, norms[k])) {
          ++false_alarms;
          break;
        }
    }
    point.false_alarm_rate =
        static_cast<double>(false_alarms) / static_cast<double>(residues.benign.size());

    std::size_t detections = 0;
    double delay_sum = 0.0;
    for (const std::vector<double>& norms : residues.attacked) {
      for (std::size_t k = 0; k < norms.size(); ++k)
        if (threshold_alarm_at(filled, k, norms[k])) {
          ++detections;
          delay_sum += static_cast<double>(k);
          break;
        }
    }
    point.detection_rate = static_cast<double>(detections) /
                           static_cast<double>(residues.attacked.size());
    point.mean_detection_delay =
        detections > 0 ? delay_sum / static_cast<double>(detections) : 0.0;
    curve.points[idx] = point;
  });
  return curve;
}

RocWorkload make_workload(const control::ClosedLoop& loop,
                          const monitor::MonitorSet& monitors,
                          const WorkloadSetup& setup) {
  const std::size_t benign_runs = setup.num_runs;
  const std::size_t horizon = setup.horizon;
  const linalg::Vector& noise_bounds = setup.noise_bounds;
  const std::vector<Signal>& attacks = setup.attacks;
  const std::uint64_t seed = setup.seed;
  const bool noisy_attacks = setup.noisy_attacks;
  require(benign_runs > 0, "make_workload: need benign runs");
  const sim::BatchRunner runner(setup.threads);
  RocWorkload workload;
  workload.benign.reserve(benign_runs);
  // Cap the attempts so a monitor that rejects everything cannot loop
  // forever; the paper's protocol likewise discards flagged runs.  Draws
  // are simulated in parallel waves but accepted strictly in attempt-index
  // order, so the kept set never depends on the thread count.
  const std::size_t max_attempts = benign_runs * 20;
  std::vector<sim::RunScratch> scratch(runner.threads());
  std::size_t attempted = 0;
  bool rejections_seen = false;
  while (workload.benign.size() < benign_runs && attempted < max_attempts) {
    const std::size_t missing = benign_runs - workload.benign.size();
    // The first wave assumes every draw passes; once the monitors have
    // rejected something, oversample so retry tails don't degenerate into
    // many tiny fan-outs.
    const std::size_t target = rejections_seen ? 2 * missing : missing;
    const std::size_t wave = std::min(max_attempts - attempted,
                                      std::max(target, runner.threads()));
    std::vector<std::optional<Trace>> kept(wave);
    sim::stats::add_simulated_runs(wave);
    runner.for_each(wave, [&](std::size_t i, std::size_t slot) {
      sim::RunScratch& s = scratch[slot];
      util::Rng rng = util::Rng::substream(seed, attempted + i);
      control::bounded_uniform_signal_into(rng, horizon, noise_bounds, s.noise);
      loop.simulate_into(s.trace, s.workspace, horizon, nullptr, nullptr, &s.noise);
      if (monitors.stealthy(s.trace)) {
        // Swap the finished trace out of the worker scratch: no deep copy,
        // and simulate_into re-prepares the buffers on the next run.
        kept[i].emplace();
        std::swap(*kept[i], s.trace);
      }
    });
    for (auto& candidate : kept) {
      if (!candidate) {
        rejections_seen = true;
        continue;
      }
      if (workload.benign.size() == benign_runs) break;
      workload.benign.push_back(std::move(*candidate));
    }
    attempted += wave;
  }
  require(workload.benign.size() == benign_runs,
          "make_workload: monitors rejected too many benign draws");

  // Attacked runs: one substream per attack, indexed past the benign
  // attempt range so the two draws never overlap.
  workload.attacked.resize(attacks.size());
  sim::stats::add_simulated_runs(attacks.size());
  runner.for_each(attacks.size(), [&](std::size_t j, std::size_t slot) {
    sim::RunScratch& s = scratch[slot];
    if (noisy_attacks) {
      util::Rng rng = util::Rng::substream(seed, max_attempts + j);
      control::bounded_uniform_signal_into(rng, horizon, noise_bounds, s.noise);
      loop.simulate_into(s.trace, s.workspace, horizon, &attacks[j], nullptr,
                         &s.noise);
    } else {
      loop.simulate_into(s.trace, s.workspace, horizon, &attacks[j]);
    }
    std::swap(workload.attacked[j], s.trace);
  });
  return workload;
}

RocResidues make_workload_norms(const control::ClosedLoop& loop,
                                const monitor::MonitorSet& monitors,
                                const WorkloadSetup& setup, control::Norm norm) {
  require(monitors.empty(),
          "make_workload_norms: benign filtering needs measurements; use "
          "make_workload when the monitor set is non-empty");
  require(setup.num_runs > 0, "make_workload_norms: need benign runs");

  const std::size_t horizon = setup.horizon;
  const sim::BatchRunner runner(setup.threads);
  RocResidues out;
  out.norm = norm;
  out.benign.resize(setup.num_runs);
  out.attacked.resize(setup.attacks.size());

  // Benign side: with no monitors every draw is accepted, so the kept runs
  // are exactly substreams 0..num_runs-1 — the set make_workload's
  // index-ordered acceptance keeps.  run_noise_norm_batch also records the
  // run / dispatch / norm-only counters.
  const std::vector<control::Norm> norms{norm};
  sim::run_noise_norm_batch(
      runner, loop, setup.num_runs, horizon, setup.noise_bounds, setup.seed,
      /*index_offset=*/0, norms,
      [&](std::size_t run, std::size_t /*slot*/,
          const std::vector<std::vector<double>>& series,
          const double* /*x_final*/) {
        out.benign[run] = series[0];
      });

  // Attacked side: one substream per attack, indexed past make_workload's
  // benign attempt cap (20x oversampling) so the draws can never overlap
  // the benign ones — the same offset rule make_workload uses.
  const std::size_t attack_offset = setup.num_runs * 20;
  sim::stats::add_simulated_runs(setup.attacks.size());
  sim::stats::add_dispatch_runs(loop.step_kernel().fixed(), setup.attacks.size());
  sim::stats::add_norm_only_runs(setup.attacks.size());
  std::vector<sim::RunScratch> scratch(runner.threads());
  runner.for_each(setup.attacks.size(), [&](std::size_t j, std::size_t slot) {
    sim::RunScratch& s = scratch[slot];
    if (setup.noisy_attacks) {
      util::Rng rng = util::Rng::substream(setup.seed, attack_offset + j);
      control::bounded_uniform_signal_into(rng, horizon, setup.noise_bounds,
                                           s.noise);
      loop.simulate_norms_into(s.workspace, horizon, norms, s.norms,
                               &setup.attacks[j], nullptr, &s.noise);
    } else {
      loop.simulate_norms_into(s.workspace, horizon, norms, s.norms,
                               &setup.attacks[j]);
    }
    out.attacked[j] = s.norms[0];
  });
  return out;
}

RocWorkload make_workload(const control::ClosedLoop& loop,
                          const monitor::MonitorSet& monitors,
                          std::size_t benign_runs, std::size_t horizon,
                          const linalg::Vector& noise_bounds,
                          const std::vector<Signal>& attacks, std::uint64_t seed,
                          bool noisy_attacks, std::size_t threads) {
  WorkloadSetup setup;
  setup.num_runs = benign_runs;
  setup.horizon = horizon;
  setup.noise_bounds = noise_bounds;
  setup.attacks = attacks;
  setup.seed = seed;
  setup.noisy_attacks = noisy_attacks;
  setup.threads = threads;
  return make_workload(loop, monitors, setup);
}

}  // namespace cpsguard::detect
