#include "detect/online.hpp"

#include "linalg/decomp.hpp"
#include "stl/semantics.hpp"
#include "util/status.hpp"

namespace cpsguard::detect {

using control::Norm;
using linalg::Matrix;
using linalg::Vector;
using util::require;

double chi2_statistic(const Matrix& s_inv, const Vector& z) {
  return z.dot(s_inv * z);
}

bool OnlineDetector::step_norm(double /*residue_norm*/) {
  throw util::InvalidArgument(
      "OnlineDetector: step_norm on a detector without a shared norm");
}

void OnlineDetector::save_state(util::ByteWriter& /*out*/) const {}

void OnlineDetector::load_state(util::ByteReader& /*in*/) {}

// ---- ThresholdOnline -------------------------------------------------------

ThresholdOnline::ThresholdOnline(const ThresholdVector& thresholds, Norm norm)
    : ThresholdOnline(std::make_shared<const ThresholdVector>(thresholds.filled()),
                      norm) {}

ThresholdOnline::ThresholdOnline(std::shared_ptr<const ThresholdVector> filled,
                                 Norm norm)
    : NormOnlineDetector(norm), thresholds_(std::move(filled)) {
  require(thresholds_ != nullptr && !thresholds_->empty(),
          "ThresholdOnline: empty threshold vector");
}

std::unique_ptr<OnlineDetector> ThresholdOnline::clone() const {
  return std::make_unique<ThresholdOnline>(thresholds_, norm_);
}

void ThresholdOnline::save_state(util::ByteWriter& out) const {
  out.u64(k_);
}

void ThresholdOnline::load_state(util::ByteReader& in) {
  k_ = static_cast<std::size_t>(in.u64());
}

// ---- WindowedOnline --------------------------------------------------------

WindowedOnline::WindowedOnline(const ThresholdVector& thresholds, Norm norm,
                               std::size_t k, std::size_t m)
    : WindowedOnline(std::make_shared<const ThresholdVector>(thresholds.filled()),
                     norm, k, m) {}

WindowedOnline::WindowedOnline(std::shared_ptr<const ThresholdVector> filled,
                               Norm norm, std::size_t k, std::size_t m)
    : NormOnlineDetector(norm), thresholds_(std::move(filled)), k_(k), m_(m) {
  require(thresholds_ != nullptr && !thresholds_->empty(),
          "WindowedOnline: empty threshold vector");
  require(k >= 1 && k <= m, "WindowedOnline: need 1 <= k <= m");
  reset();
}

void WindowedOnline::reset() {
  window_.assign(m_, false);
  count_ = 0;
  i_ = 0;
}

bool WindowedOnline::step_norm(double residue_norm) {
  const std::size_t slot = i_ % m_;
  if (window_[slot]) --count_;
  const bool exceeded = threshold_alarm_at(*thresholds_, i_, residue_norm);
  window_[slot] = exceeded;
  if (exceeded) ++count_;
  ++i_;
  return count_ >= k_;
}

std::unique_ptr<OnlineDetector> WindowedOnline::clone() const {
  return std::make_unique<WindowedOnline>(thresholds_, norm_, k_, m_);
}

void WindowedOnline::save_state(util::ByteWriter& out) const {
  out.u64(i_);
  // The window flags bit-packed LSB-first (count_ is derivable but stored
  // states must restore without a recompute pass).
  out.u64(count_);
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < m_; ++i) {
    if (window_[i]) byte = static_cast<std::uint8_t>(byte | (1U << (i % 8)));
    if (i % 8 == 7 || i + 1 == m_) {
      out.u8(byte);
      byte = 0;
    }
  }
}

void WindowedOnline::load_state(util::ByteReader& in) {
  i_ = static_cast<std::size_t>(in.u64());
  count_ = static_cast<std::size_t>(in.u64());
  window_.assign(m_, false);
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < m_; ++i) {
    if (i % 8 == 0) byte = in.u8();
    window_[i] = ((byte >> (i % 8)) & 1U) != 0;
  }
  std::size_t recount = 0;
  for (std::size_t i = 0; i < m_; ++i) recount += window_[i] ? 1 : 0;
  require(recount == count_, "WindowedOnline: corrupt window state");
}

// ---- CusumOnline -----------------------------------------------------------

CusumOnline::CusumOnline(double drift, double limit, Norm norm)
    : NormOnlineDetector(norm), drift_(drift), limit_(limit) {
  require(limit > 0.0, "CusumOnline: limit must be positive");
  require(drift >= 0.0, "CusumOnline: drift must be non-negative");
}

std::unique_ptr<OnlineDetector> CusumOnline::clone() const {
  return std::make_unique<CusumOnline>(drift_, limit_, norm_);
}

void CusumOnline::save_state(util::ByteWriter& out) const { out.f64(g_); }

void CusumOnline::load_state(util::ByteReader& in) { g_ = in.f64(); }

// ---- Chi2Online ------------------------------------------------------------

Chi2Online::Chi2Online(const Matrix& innovation_covariance, double limit)
    : s_inv_(linalg::inverse(innovation_covariance)), limit_(limit) {
  require(limit > 0.0, "Chi2Online: limit must be positive");
}

Chi2Online::Chi2Online(FromInverseTag, Matrix s_inv, double limit)
    : s_inv_(std::move(s_inv)), limit_(limit) {
  require(limit > 0.0, "Chi2Online: limit must be positive");
}

Chi2Online Chi2Online::from_inverse(Matrix s_inv, double limit) {
  return Chi2Online(FromInverseTag{}, std::move(s_inv), limit);
}

std::unique_ptr<OnlineDetector> Chi2Online::clone() const {
  return std::unique_ptr<OnlineDetector>(
      new Chi2Online(FromInverseTag{}, s_inv_, limit_));
}

// ---- StlResidueOnline ------------------------------------------------------

namespace {

/// Rejects formulas referencing anything but the residue signal — the
/// only quantity a streaming residue detector observes.
void require_residue_only(const stl::Formula& f) {
  switch (f.kind()) {
    case stl::FormulaKind::kTrue:
    case stl::FormulaKind::kFalse:
      return;
    case stl::FormulaKind::kAtom:
      for (const stl::SignalTerm& term : f.atom_ref().expr.terms())
        require(term.kind == stl::SignalKind::kResidue,
                "StlResidueOnline: formula references signal '" +
                    stl::signal_kind_name(term.kind) +
                    "'; only residue terms are observable online");
      return;
    default:
      for (const stl::Formula& child : f.children()) require_residue_only(child);
      return;
  }
}

}  // namespace

StlResidueOnline::StlResidueOnline(stl::Formula pass_condition)
    : formula_(std::move(pass_condition)), depth_(formula_.depth()) {
  require_residue_only(formula_);
}

void StlResidueOnline::reset() { buffer_.z.clear(); }

bool StlResidueOnline::step(const Vector& z) {
  buffer_.z.push_back(z);
  const std::size_t k = buffer_.z.size() - 1;
  if (k < depth_) return false;  // window not complete yet
  return !stl::holds(formula_, buffer_, k - depth_);
}

std::unique_ptr<OnlineDetector> StlResidueOnline::clone() const {
  return std::make_unique<StlResidueOnline>(formula_);
}

void StlResidueOnline::save_state(util::ByteWriter& out) const {
  out.u64(buffer_.z.size());
  out.u32(static_cast<std::uint32_t>(
      buffer_.z.empty() ? 0 : buffer_.z.front().size()));
  for (const Vector& z : buffer_.z)
    for (std::size_t i = 0; i < z.size(); ++i) out.f64(z[i]);
}

void StlResidueOnline::load_state(util::ByteReader& in) {
  const std::size_t count = static_cast<std::size_t>(in.u64());
  const std::size_t dim = in.u32();
  buffer_.z.clear();
  buffer_.z.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    Vector z(dim);
    for (std::size_t i = 0; i < dim; ++i) z[i] = in.f64();
    buffer_.z.push_back(std::move(z));
  }
}

// ---- ResidueRecord ---------------------------------------------------------

void ResidueRecord::assign(const std::vector<Vector>& z) {
  steps_ = z.size();
  dim_ = z.empty() ? 0 : z.front().size();
  data_.resize(steps_ * dim_);
  double* out = data_.data();
  for (const Vector& v : z) {
    require(v.size() == dim_, "ResidueRecord: ragged residue dimensions");
    for (std::size_t i = 0; i < dim_; ++i) *out++ = v[i];
  }
}

// ---- NormRecord ------------------------------------------------------------

void NormRecord::assign(const std::vector<std::vector<double>>& series) {
  kinds_ = series.size();
  steps_ = series.empty() ? 0 : series.front().size();
  data_.resize(kinds_ * steps_);
  double* out = data_.data();
  for (const std::vector<double>& s : series) {
    require(s.size() == steps_, "NormRecord: ragged norm series");
    for (const double v : s) *out++ = v;
  }
}

namespace {
std::optional<Norm> shared_norms_probe(const DetectorFactory& factory) {
  const std::unique_ptr<OnlineDetector> probe = factory();
  require(probe != nullptr, "shared_norms: factory produced null detector");
  return probe->shared_norm();
}
}  // namespace

std::optional<std::vector<Norm>> shared_norms(
    const std::vector<DetectorFactory>& factories) {
  std::vector<Norm> norms;
  for (const DetectorFactory& factory : factories) {
    const std::optional<Norm> norm = shared_norms_probe(factory);
    if (!norm) return std::nullopt;  // needs the full residue vector
    if (std::find(norms.begin(), norms.end(), *norm) == norms.end())
      norms.push_back(*norm);
  }
  return norms;
}

// ---- streaming helpers -----------------------------------------------------

std::optional<std::size_t> streaming_first_alarm(
    OnlineDetector& det, const std::vector<Vector>& residues) {
  det.reset();
  for (std::size_t k = 0; k < residues.size(); ++k)
    if (det.step(residues[k])) return k;
  return std::nullopt;
}

std::optional<std::size_t> streaming_first_alarm(OnlineDetector& det,
                                                 const control::Trace& trace) {
  return streaming_first_alarm(det, trace.z);
}

// ---- DetectorBank ----------------------------------------------------------

std::size_t DetectorBank::add(std::unique_ptr<OnlineDetector> detector) {
  require(detector != nullptr, "DetectorBank: null detector");
  Entry entry{std::move(detector), -1};
  if (const auto norm = entry.detector->shared_norm()) {
    const auto it = std::find(norms_.begin(), norms_.end(), *norm);
    entry.norm_slot = it - norms_.begin();
    if (it == norms_.end()) {
      norms_.push_back(*norm);
      norm_series_.emplace_back();
    }
  }
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

void DetectorBank::evaluate(const std::vector<Vector>& residues,
                            std::vector<std::optional<std::size_t>>& first_alarms) {
  const std::size_t steps = residues.size();
  for (std::size_t s = 0; s < norms_.size(); ++s) {
    norm_series_[s].resize(steps);
    for (std::size_t k = 0; k < steps; ++k)
      norm_series_[s][k] = control::vector_norm(residues[k], norms_[s]);
  }
  first_alarms.assign(entries_.size(), std::nullopt);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    entry.detector->reset();
    if (entry.norm_slot >= 0) {
      const std::vector<double>& series =
          norm_series_[static_cast<std::size_t>(entry.norm_slot)];
      for (std::size_t k = 0; k < steps; ++k)
        if (entry.detector->step_norm(series[k])) {
          first_alarms[i] = k;
          break;
        }
    } else {
      for (std::size_t k = 0; k < steps; ++k)
        if (entry.detector->step(residues[k])) {
          first_alarms[i] = k;
          break;
        }
    }
  }
}

void DetectorBank::evaluate(const ResidueRecord& record,
                            std::vector<std::optional<std::size_t>>& first_alarms) {
  const std::size_t steps = record.steps();
  const std::size_t dim = record.dim();
  for (std::size_t s = 0; s < norms_.size(); ++s) {
    norm_series_[s].resize(steps);
    for (std::size_t k = 0; k < steps; ++k)
      norm_series_[s][k] = control::vector_norm(record.row(k), dim, norms_[s]);
  }
  first_alarms.assign(entries_.size(), std::nullopt);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    entry.detector->reset();
    if (entry.norm_slot >= 0) {
      const std::vector<double>& series =
          norm_series_[static_cast<std::size_t>(entry.norm_slot)];
      for (std::size_t k = 0; k < steps; ++k)
        if (entry.detector->step_norm(series[k])) {
          first_alarms[i] = k;
          break;
        }
    } else {
      scratch_.resize(dim);
      double* scratch = scratch_.data();
      for (std::size_t k = 0; k < steps; ++k) {
        const double* row = record.row(k);
        for (std::size_t d = 0; d < dim; ++d) scratch[d] = row[d];
        if (entry.detector->step(scratch_)) {
          first_alarms[i] = k;
          break;
        }
      }
    }
  }
}

void DetectorBank::evaluate_norm_spans(
    const std::vector<Norm>& norms, const double* const* series,
    std::size_t steps, std::size_t stride,
    std::vector<std::optional<std::size_t>>& first_alarms) {
  // Map each bank norm slot onto the caller's series table (member scratch:
  // this runs once per recorded run, so it must not allocate).
  slot_scratch_.resize(norms_.size());
  std::size_t* slot_of = slot_scratch_.data();
  for (std::size_t s = 0; s < norms_.size(); ++s) {
    const auto it = std::find(norms.begin(), norms.end(), norms_[s]);
    require(it != norms.end(),
            "DetectorBank: norm-only record lacks a norm this bank needs");
    slot_of[s] = static_cast<std::size_t>(it - norms.begin());
  }
  first_alarms.assign(entries_.size(), std::nullopt);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    require(entry.norm_slot >= 0,
            "DetectorBank: full-residue detector cannot ride a norm-only record");
    entry.detector->reset();
    const double* span =
        series[slot_of[static_cast<std::size_t>(entry.norm_slot)]];
    for (std::size_t k = 0; k < steps; ++k)
      if (entry.detector->step_norm(span[k * stride])) {
        first_alarms[i] = k;
        break;
      }
  }
}

void DetectorBank::evaluate_norms(
    const std::vector<Norm>& norms, const std::vector<std::vector<double>>& series,
    std::vector<std::optional<std::size_t>>& first_alarms) {
  require(series.size() == norms.size(),
          "DetectorBank: norm series / norm list arity mismatch");
  span_scratch_.resize(series.size());
  std::size_t steps = 0;
  for (std::size_t s = 0; s < series.size(); ++s) {
    span_scratch_[s] = series[s].data();
    steps = series[s].size();
    require(series[s].size() == series.front().size(),
            "DetectorBank: ragged norm series");
  }
  evaluate_norm_spans(norms, span_scratch_.data(), steps, /*stride=*/1,
                      first_alarms);
}

void DetectorBank::evaluate_norms(
    const std::vector<Norm>& norms, const NormRecord& record,
    std::vector<std::optional<std::size_t>>& first_alarms) {
  require(record.kinds() == norms.size(),
          "DetectorBank: norm record / norm list arity mismatch");
  span_scratch_.resize(record.kinds());
  for (std::size_t s = 0; s < record.kinds(); ++s)
    span_scratch_[s] = record.series(s);
  evaluate_norm_spans(norms, span_scratch_.data(), record.steps(),
                      /*stride=*/1, first_alarms);
}

void DetectorBank::evaluate_norms_lane(
    const std::vector<Norm>& norms, const double* const* series,
    std::size_t steps, std::size_t width, std::size_t lane,
    std::vector<std::optional<std::size_t>>& first_alarms) {
  require(lane < width, "DetectorBank: lane out of range");
  span_scratch_.resize(norms.size());
  for (std::size_t s = 0; s < norms.size(); ++s)
    span_scratch_[s] = series[s] + lane;
  evaluate_norm_spans(norms, span_scratch_.data(), steps, /*stride=*/width,
                      first_alarms);
}

}  // namespace cpsguard::detect
