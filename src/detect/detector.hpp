// detector.hpp — runtime residue-based detectors (trace-level wrappers).
//
// Each class pairs a detector configuration with the convenience of
// evaluating a whole recorded trace at once.  The alarm rules themselves
// live in detect/online.hpp (threshold_alarm_at, cusum_update,
// chi2_statistic, and the OnlineDetector implementations); every wrapper
// here delegates to that single streaming core, and make_online() hands
// the same configuration to DetectorBank / Monte-Carlo evaluation.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/trace.hpp"
#include "detect/online.hpp"
#include "detect/threshold.hpp"
#include "linalg/matrix.hpp"

namespace cpsguard::detect {

/// Threshold detector of the paper: alarm at instant k when the residue
/// norm reaches the (set) threshold, ||z_k|| >= Th[k].
class ResidueDetector {
 public:
  ResidueDetector(ThresholdVector thresholds, control::Norm norm);

  /// First alarming instant of a trace, if any.  Instants beyond the
  /// threshold vector reuse its last entry via ThresholdVector::filled().
  std::optional<std::size_t> first_alarm(const control::Trace& trace) const;

  /// True when any instant alarms.
  bool triggered(const control::Trace& trace) const {
    return first_alarm(trace).has_value();
  }

  /// Streaming instance with this configuration (detect/online.hpp).
  std::unique_ptr<OnlineDetector> make_online() const;

  const ThresholdVector& thresholds() const { return thresholds_; }
  control::Norm norm() const { return norm_; }

 private:
  ThresholdVector thresholds_;  // stored filled()
  control::Norm norm_;
};

/// ResidueDetector's alarm rule on a precomputed residue-norm series (how
/// scenario reports carry traces): first instant whose norm reaches the
/// (filled) threshold, nullopt when silent or `thresholds` is empty.
std::optional<std::size_t> first_alarm_in_series(
    const std::vector<double>& residue_norms, const ThresholdVector& thresholds);

/// Chi-squared detector baseline: alarm when  z' S^{-1} z > threshold,
/// with S the innovation covariance from the Kalman design.  Included as a
/// standard comparison point from the residue-detector literature.
class Chi2Detector {
 public:
  Chi2Detector(const linalg::Matrix& innovation_covariance, double threshold);

  std::optional<std::size_t> first_alarm(const control::Trace& trace) const;
  bool triggered(const control::Trace& trace) const {
    return first_alarm(trace).has_value();
  }

  /// The statistic g_k for one residue.
  double statistic(const linalg::Vector& z) const;

  std::unique_ptr<OnlineDetector> make_online() const;

 private:
  linalg::Matrix s_inv_;
  double threshold_;
};

/// "k-of-m" windowed policy around a threshold detector: an alarm fires at
/// instant i when at least `k` of the last `m` samples (window [i-m+1, i])
/// exceeded their thresholds.  The standard false-alarm-reduction wrapper
/// in deployed intrusion detectors: isolated noise spikes are forgiven,
/// persistent excursions are not.  k = m = 1 degenerates to the plain
/// detector.
class WindowedDetector {
 public:
  /// Requires 1 <= k <= m.
  WindowedDetector(ThresholdVector thresholds, control::Norm norm, std::size_t k,
                   std::size_t m);

  std::optional<std::size_t> first_alarm(const control::Trace& trace) const;
  bool triggered(const control::Trace& trace) const {
    return first_alarm(trace).has_value();
  }

  std::unique_ptr<OnlineDetector> make_online() const;

  const ThresholdVector& thresholds() const { return thresholds_; }
  std::size_t k() const { return k_; }
  std::size_t m() const { return m_; }

 private:
  ThresholdVector thresholds_;  // stored filled()
  control::Norm norm_;
  std::size_t k_;
  std::size_t m_;
};

/// CUSUM detector baseline: g_k = max(0, g_{k-1} + ||z_k|| - drift); alarm
/// when g_k > threshold.
class CusumDetector {
 public:
  CusumDetector(double drift, double threshold, control::Norm norm);

  std::optional<std::size_t> first_alarm(const control::Trace& trace) const;
  bool triggered(const control::Trace& trace) const {
    return first_alarm(trace).has_value();
  }

  /// Full statistic series for plots.
  std::vector<double> statistic_series(const control::Trace& trace) const;

  std::unique_ptr<OnlineDetector> make_online() const;

 private:
  double drift_;
  double threshold_;
  control::Norm norm_;
};

}  // namespace cpsguard::detect
