#include "detect/far.hpp"

#include "util/logging.hpp"
#include "util/status.hpp"

namespace cpsguard::detect {

using control::Signal;
using control::Trace;

FarReport evaluate_far(const control::ClosedLoop& loop, const monitor::MonitorSet& monitors,
                       const std::vector<FarCandidate>& candidates, const FarSetup& setup) {
  util::require(setup.num_runs > 0, "evaluate_far: num_runs must be positive");
  util::require(setup.noise_bounds.size() == loop.config().plant.num_outputs(),
                "evaluate_far: noise bound dimension must match outputs");

  util::Rng rng(setup.seed);
  FarReport report;
  report.total_runs = setup.num_runs;
  report.rows.reserve(candidates.size());
  for (const auto& c : candidates) report.rows.push_back(FarRow{c.name, 0, 0});

  for (std::size_t run = 0; run < setup.num_runs; ++run) {
    const Signal noise =
        control::bounded_uniform_signal(rng, setup.horizon, setup.noise_bounds);
    const Trace trace = loop.simulate(setup.horizon, /*attack=*/nullptr,
                                      /*process_noise=*/nullptr, &noise);
    if (setup.pfc && !setup.pfc(trace)) {
      ++report.discarded_by_pfc;
      continue;
    }
    if (!monitors.stealthy(trace)) {
      ++report.discarded_by_mdc;
      continue;
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      ++report.rows[i].evaluated;
      if (candidates[i].detector.triggered(trace)) ++report.rows[i].alarms;
    }
  }
  CPSG_INFO("far") << "evaluated " << setup.num_runs << " runs, pfc-discard "
                   << report.discarded_by_pfc << ", mdc-discard "
                   << report.discarded_by_mdc;
  return report;
}

}  // namespace cpsguard::detect
