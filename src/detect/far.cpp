#include "detect/far.hpp"

#include "sim/monte_carlo.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"

namespace cpsguard::detect {

using control::Trace;

namespace {

/// Norm-only eligibility shared by both protocol entry points: the monitors
/// read measurements, so the norm-only record (which materializes no trace)
/// is only valid without them, and the pfc filter must either be absent or
/// come with its final-state face (setup.pfc_final) so it can judge runs
/// from the x_{T+1} the kernel leaves behind; the caller additionally
/// guarantees every detector consumes a recorded norm.
bool norm_only_eligible(const FarSetup& setup, const monitor::MonitorSet& monitors) {
  return (!setup.pfc || setup.pfc_final) && monitors.empty() &&
         sim::norm_only_enabled();
}

}  // namespace

FarCandidate::FarCandidate(std::string name_, ResidueDetector detector)
    : name(std::move(name_)) {
  auto online = std::shared_ptr<OnlineDetector>(detector.make_online());
  factory = [online] { return online->clone(); };
}

FarCandidate::FarCandidate(std::string name_, DetectorFactory factory_)
    : name(std::move(name_)), factory(std::move(factory_)) {}

std::optional<std::vector<control::Norm>> candidate_shared_norms(
    const std::vector<FarCandidate>& candidates) {
  std::vector<DetectorFactory> factories;
  factories.reserve(candidates.size());
  for (const auto& c : candidates) factories.push_back(c.factory);
  return shared_norms(factories);
}

FarSimulation::FarSimulation(const control::ClosedLoop& loop,
                             const monitor::MonitorSet& monitors,
                             const FarSetup& setup,
                             const std::vector<control::Norm>* norm_only) {
  util::require(setup.num_runs > 0, "FarSimulation: num_runs must be positive");
  util::require(setup.noise_bounds.size() == loop.config().plant.num_outputs(),
                "FarSimulation: noise bound dimension must match outputs");

  // Every run records its verdict (and, when kept, its residues or norm
  // series) keyed by run index, so the record is independent of the thread
  // count.
  evaluated_.assign(setup.num_runs, 0);

  const sim::BatchRunner runner(setup.threads);
  if (norm_only && !norm_only->empty() && norm_only_eligible(setup, monitors)) {
    // Norm-only phase 1: no monitors, and the pfc filter (when present)
    // judges the final plant state the kernel exposes — runs it rejects are
    // discarded exactly as on the trace path, every other run keeps only
    // its residual-norm series.
    const std::size_t n = loop.config().plant.num_states();
    record_norms_ = *norm_only;
    norm_records_.resize(setup.num_runs);
    std::vector<std::uint8_t> pfc_discard(setup.num_runs, 0);
    sim::run_noise_norm_batch(
        runner, loop, setup.num_runs, setup.horizon, setup.noise_bounds,
        setup.seed, /*index_offset=*/0, record_norms_,
        [&](std::size_t run, std::size_t /*slot*/,
            const std::vector<std::vector<double>>& series,
            const double* x_final) {
          if (setup.pfc_final && !setup.pfc_final(x_final, n)) {
            pfc_discard[run] = 1;
            return;
          }
          evaluated_[run] = 1;
          norm_records_[run].assign(series);
        });
    for (std::size_t run = 0; run < setup.num_runs; ++run) {
      discarded_by_pfc_ += pfc_discard[run];
      evaluated_runs_ += evaluated_[run];
    }
    CPSG_INFO("far") << "simulated " << setup.num_runs
                     << " norm-only runs on " << runner.threads()
                     << " thread(s), pfc-discard " << discarded_by_pfc_;
    return;
  }

  residues_.resize(setup.num_runs);
  std::vector<std::uint8_t> pfc_discard(setup.num_runs, 0);
  std::vector<std::uint8_t> mdc_discard(setup.num_runs, 0);
  sim::run_noise_batch(
      runner, loop, setup.num_runs, setup.horizon, setup.noise_bounds, setup.seed,
      /*index_offset=*/0, [&](std::size_t run, const Trace& trace) {
        if (setup.pfc && !setup.pfc(trace)) {
          pfc_discard[run] = 1;
          return;
        }
        if (!monitors.stealthy(trace)) {
          mdc_discard[run] = 1;
          return;
        }
        evaluated_[run] = 1;
        residues_[run].assign(trace.z);
      });

  for (std::size_t run = 0; run < setup.num_runs; ++run) {
    discarded_by_pfc_ += pfc_discard[run];
    discarded_by_mdc_ += mdc_discard[run];
    evaluated_runs_ += evaluated_[run];
  }
  CPSG_INFO("far") << "simulated " << setup.num_runs << " runs on "
                   << runner.threads() << " thread(s), pfc-discard "
                   << discarded_by_pfc_ << ", mdc-discard " << discarded_by_mdc_;
}

FarReport FarSimulation::evaluate(const std::vector<FarCandidate>& candidates) const {
  FarReport report;
  report.total_runs = total_runs();
  report.discarded_by_pfc = discarded_by_pfc_;
  report.discarded_by_mdc = discarded_by_mdc_;
  report.rows.reserve(candidates.size());
  for (const auto& c : candidates) report.rows.push_back(FarRow{c.name, 0, 0});

  DetectorBank bank;
  for (const auto& c : candidates) bank.add(c.factory());
  std::vector<std::optional<std::size_t>> first_alarms;
  for (std::size_t run = 0; run < evaluated_.size(); ++run) {
    if (!evaluated_[run]) continue;
    // The norm-only record feeds step_norm() from the recorded series;
    // the residue record recomputes the same series first.  Identical
    // decision sequences, identical report.
    if (norm_only())
      bank.evaluate_norms(record_norms_, norm_records_[run], first_alarms);
    else
      bank.evaluate(residues_[run], first_alarms);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      ++report.rows[i].evaluated;
      report.rows[i].alarms += first_alarms[i].has_value() ? 1 : 0;
    }
  }
  return report;
}

FarReport evaluate_far(const control::ClosedLoop& loop, const monitor::MonitorSet& monitors,
                       const std::vector<FarCandidate>& candidates, const FarSetup& setup) {
  // One-shot protocol: the candidate set is known up front, so evaluate
  // inside the simulation callback instead of recording residues —
  // constant memory regardless of num_runs, same alarm rules, same
  // numbers.  (FarSimulation exists for the record-once/evaluate-many
  // setting: sweep simulation groups.)  Every worker slot owns its own
  // bank of factory-fresh detector instances, so stateful detectors
  // (CUSUM) can never race or leak state across runs.
  util::require(setup.num_runs > 0, "evaluate_far: num_runs must be positive");
  util::require(setup.noise_bounds.size() == loop.config().plant.num_outputs(),
                "evaluate_far: noise bound dimension must match outputs");

  FarReport report;
  report.total_runs = setup.num_runs;
  report.rows.reserve(candidates.size());
  for (const auto& c : candidates) report.rows.push_back(FarRow{c.name, 0, 0});

  const sim::BatchRunner runner(setup.threads);
  std::vector<DetectorBank> banks(runner.threads());
  std::vector<std::vector<std::optional<std::size_t>>> first_alarms(
      runner.threads());
  for (auto& bank : banks)
    for (const auto& c : candidates) bank.add(c.factory());

  // Fast path: when every candidate streams a shared norm, the monitors are
  // empty, and the pfc filter (if any) has a final-state face, the whole
  // protocol runs norm-only — the kernel computes ||z_k|| on the fly,
  // nothing is materialized, and the banks judge each lane group's
  // interleaved series in place.  Bit-identical verdicts.
  const std::optional<std::vector<control::Norm>> norms =
      candidate_shared_norms(candidates);
  if (norms && !norms->empty() && norm_only_eligible(setup, monitors)) {
    const std::size_t n = loop.config().plant.num_states();
    std::vector<std::uint8_t> pfc_discard(setup.num_runs, 0);
    std::vector<std::uint8_t> alarms(setup.num_runs * candidates.size(), 0);
    // Per-slot contiguous x_{T+1} scratch for the pfc_final call (lane
    // groups hand the final states over lane-interleaved).
    std::vector<std::vector<double>> x_scratch(runner.threads());
    sim::run_noise_norm_batch_lanes(
        runner, loop, setup.num_runs, setup.horizon, setup.noise_bounds,
        setup.seed, /*index_offset=*/0, *norms,
        [&](std::size_t slot, const sim::NormLaneGroup& g) {
          for (std::size_t w = 0; w < g.lanes; ++w) {
            const std::size_t run = g.first_run + w;
            if (setup.pfc_final) {
              std::vector<double>& x = x_scratch[slot];
              x.resize(g.states);
              for (std::size_t i = 0; i < g.states; ++i)
                x[i] = g.x_final[i * g.width + w];
              if (!setup.pfc_final(x.data(), n)) {
                pfc_discard[run] = 1;
                continue;
              }
            }
            banks[slot].evaluate_norms_lane(*norms, g.series, g.steps,
                                            g.width, w, first_alarms[slot]);
            for (std::size_t i = 0; i < candidates.size(); ++i)
              alarms[run * candidates.size() + i] =
                  first_alarms[slot][i].has_value() ? 1 : 0;
          }
        });
    for (std::size_t run = 0; run < setup.num_runs; ++run) {
      if (pfc_discard[run]) {
        ++report.discarded_by_pfc;
        continue;
      }
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        ++report.rows[i].evaluated;
        report.rows[i].alarms += alarms[run * candidates.size() + i];
      }
    }
    CPSG_INFO("far") << "evaluated " << setup.num_runs
                     << " norm-only runs on " << runner.threads()
                     << " thread(s), pfc-discard " << report.discarded_by_pfc;
    return report;
  }

  enum class RunStatus : std::uint8_t { kEvaluated, kDiscardedPfc, kDiscardedMdc };
  std::vector<RunStatus> status(setup.num_runs, RunStatus::kEvaluated);
  std::vector<std::uint8_t> alarms(setup.num_runs * candidates.size(), 0);

  sim::run_noise_batch(
      runner, loop, setup.num_runs, setup.horizon, setup.noise_bounds, setup.seed,
      /*index_offset=*/0,
      [&](std::size_t run, std::size_t slot, const Trace& trace) {
        if (setup.pfc && !setup.pfc(trace)) {
          status[run] = RunStatus::kDiscardedPfc;
          return;
        }
        if (!monitors.stealthy(trace)) {
          status[run] = RunStatus::kDiscardedMdc;
          return;
        }
        // Worker-local bank: judge this run's residues in place and keep
        // only the verdict bits.
        banks[slot].evaluate(trace, first_alarms[slot]);
        for (std::size_t i = 0; i < candidates.size(); ++i)
          alarms[run * candidates.size() + i] =
              first_alarms[slot][i].has_value() ? 1 : 0;
      });

  for (std::size_t run = 0; run < setup.num_runs; ++run) {
    switch (status[run]) {
      case RunStatus::kDiscardedPfc:
        ++report.discarded_by_pfc;
        break;
      case RunStatus::kDiscardedMdc:
        ++report.discarded_by_mdc;
        break;
      case RunStatus::kEvaluated:
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          ++report.rows[i].evaluated;
          report.rows[i].alarms += alarms[run * candidates.size() + i];
        }
        break;
    }
  }
  CPSG_INFO("far") << "evaluated " << setup.num_runs << " runs on "
                   << runner.threads() << " thread(s), pfc-discard "
                   << report.discarded_by_pfc << ", mdc-discard "
                   << report.discarded_by_mdc;
  return report;
}

}  // namespace cpsguard::detect
