#include "detect/far.hpp"

#include "sim/monte_carlo.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"

namespace cpsguard::detect {

using control::Trace;

namespace {

// Per-run verdict of the protocol's filtering stages.
enum class RunStatus : std::uint8_t { kEvaluated, kDiscardedPfc, kDiscardedMdc };

}  // namespace

FarCandidate::FarCandidate(std::string name_, ResidueDetector detector)
    : name(std::move(name_)),
      triggered([det = std::move(detector)](const Trace& trace) {
        return det.triggered(trace);
      }) {}

FarCandidate::FarCandidate(std::string name_,
                           std::function<bool(const Trace&)> triggered_)
    : name(std::move(name_)), triggered(std::move(triggered_)) {}

FarReport evaluate_far(const control::ClosedLoop& loop, const monitor::MonitorSet& monitors,
                       const std::vector<FarCandidate>& candidates, const FarSetup& setup) {
  util::require(setup.num_runs > 0, "evaluate_far: num_runs must be positive");
  util::require(setup.noise_bounds.size() == loop.config().plant.num_outputs(),
                "evaluate_far: noise bound dimension must match outputs");

  FarReport report;
  report.total_runs = setup.num_runs;
  report.rows.reserve(candidates.size());
  for (const auto& c : candidates) report.rows.push_back(FarRow{c.name, 0, 0});

  // Every run records its verdicts keyed by run index; the reduction below
  // walks them in order, so the report is independent of the thread count.
  std::vector<RunStatus> status(setup.num_runs, RunStatus::kEvaluated);
  std::vector<std::uint8_t> alarms(setup.num_runs * candidates.size(), 0);

  const sim::BatchRunner runner(setup.threads);
  sim::run_noise_batch(
      runner, loop, setup.num_runs, setup.horizon, setup.noise_bounds, setup.seed,
      /*index_offset=*/0, [&](std::size_t run, const Trace& trace) {
        if (setup.pfc && !setup.pfc(trace)) {
          status[run] = RunStatus::kDiscardedPfc;
          return;
        }
        if (!monitors.stealthy(trace)) {
          status[run] = RunStatus::kDiscardedMdc;
          return;
        }
        for (std::size_t i = 0; i < candidates.size(); ++i)
          alarms[run * candidates.size() + i] = candidates[i].triggered(trace) ? 1 : 0;
      });

  for (std::size_t run = 0; run < setup.num_runs; ++run) {
    switch (status[run]) {
      case RunStatus::kDiscardedPfc:
        ++report.discarded_by_pfc;
        break;
      case RunStatus::kDiscardedMdc:
        ++report.discarded_by_mdc;
        break;
      case RunStatus::kEvaluated:
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          ++report.rows[i].evaluated;
          report.rows[i].alarms += alarms[run * candidates.size() + i];
        }
        break;
    }
  }
  CPSG_INFO("far") << "evaluated " << setup.num_runs << " runs on "
                   << runner.threads() << " thread(s), pfc-discard "
                   << report.discarded_by_pfc << ", mdc-discard "
                   << report.discarded_by_mdc;
  return report;
}

}  // namespace cpsguard::detect
