// noise_floor.hpp — empirical residue noise floor estimation.
//
// A synthesized threshold vector is only deployable if it clears the
// residue levels that benign noise produces; otherwise the detector's FAR
// explodes (which is exactly the trade-off the paper's Fig. 1 discusses).
// This utility estimates per-instant residue-norm quantiles over seeded
// Monte-Carlo noise runs, giving both a diagnostic ("how much of this
// threshold vector sits below the noise floor?") and a principled lower
// envelope for threshold post-processing.
#pragma once

#include <cstddef>
#include <vector>

#include "control/closed_loop.hpp"
#include "control/noise.hpp"
#include "detect/threshold.hpp"
#include "sim/config.hpp"
#include "util/random.hpp"

namespace cpsguard::detect {

/// Monte-Carlo knobs (sim::MonteCarloConfig) plus the quantile/norm choice.
struct NoiseFloorSetup : sim::MonteCarloConfig {
  NoiseFloorSetup() {
    num_runs = 200;
    seed = 7;
  }

  double quantile = 0.95;  ///< per-instant quantile of ||z_k||
  control::Norm norm = control::Norm::kInf;
};

struct NoiseFloor {
  /// Per-instant residue-norm quantile under benign noise (length horizon).
  std::vector<double> quantiles;
  /// Largest observed residue norm across all runs and instants.
  double peak = 0.0;

  /// Number of instants at which the given thresholds sit at or below the
  /// floor (each such instant alarms on >= (1-quantile) of benign runs).
  std::size_t instants_below(const ThresholdVector& thresholds) const;
};

/// Runs the Monte-Carlo estimate.
NoiseFloor estimate_noise_floor(const control::ClosedLoop& loop,
                                const NoiseFloorSetup& setup);

}  // namespace cpsguard::detect
