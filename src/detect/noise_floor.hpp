// noise_floor.hpp — empirical residue noise floor estimation.
//
// A synthesized threshold vector is only deployable if it clears the
// residue levels that benign noise produces; otherwise the detector's FAR
// explodes (which is exactly the trade-off the paper's Fig. 1 discusses).
// This utility estimates per-instant residue-norm quantiles over seeded
// Monte-Carlo noise runs, giving both a diagnostic ("how much of this
// threshold vector sits below the noise floor?") and a principled lower
// envelope for threshold post-processing.
//
// Two-phase: NoiseFloorSamples simulates the batch once and keeps the raw
// per-instant norm samples; floor(q) extracts the quantile envelope for any
// number of quantiles without re-simulating — which is how a sweep's
// quantile axis (or a scenario mixing 0.5/0.95-calibrated detectors)
// shares one simulation batch.
#pragma once

#include <cstddef>
#include <vector>

#include "control/closed_loop.hpp"
#include "control/noise.hpp"
#include "detect/threshold.hpp"
#include "sim/config.hpp"
#include "util/random.hpp"

namespace cpsguard::detect {

/// Monte-Carlo knobs (sim::MonteCarloConfig) plus the quantile/norm choice.
struct NoiseFloorSetup : sim::MonteCarloConfig {
  NoiseFloorSetup() {
    num_runs = 200;
    seed = 7;
  }

  double quantile = 0.95;  ///< per-instant quantile of ||z_k||
  control::Norm norm = control::Norm::kInf;
};

struct NoiseFloor {
  /// Per-instant residue-norm quantile under benign noise (length horizon).
  std::vector<double> quantiles;
  /// Largest observed residue norm across all runs and instants.
  double peak = 0.0;

  /// Number of instants at which the given thresholds sit at or below the
  /// floor (each such instant alarms on >= (1-quantile) of benign runs).
  std::size_t instants_below(const ThresholdVector& thresholds) const;
};

/// Phase 1: the recorded per-instant residue-norm samples of one benign
/// Monte-Carlo batch (setup.quantile is ignored at collection time).
class NoiseFloorSamples {
 public:
  NoiseFloorSamples(const control::ClosedLoop& loop,
                    const NoiseFloorSetup& setup);

  std::size_t horizon() const { return samples_.size(); }
  std::size_t runs() const {
    return samples_.empty() ? 0 : samples_.front().size();
  }
  double peak() const { return peak_; }

  /// Phase 2: the `quantile` envelope over the recorded samples — the same
  /// estimator at the same samples as estimate_noise_floor, so extracting
  /// several quantiles from one batch is bit-identical to re-estimating.
  NoiseFloor floor(double quantile) const;

 private:
  std::vector<std::vector<double>> samples_;  ///< [instant][run] = ||z_k||
  double peak_ = 0.0;
};

/// Runs the Monte-Carlo estimate (phase 1 + phase 2 in one call).
NoiseFloor estimate_noise_floor(const control::ClosedLoop& loop,
                                const NoiseFloorSetup& setup);

}  // namespace cpsguard::detect
