// session.hpp — addressable streaming detector state: the service-facing
// face of the online detector bank.
//
// DetectorBank evaluates recorded series in batch; a Session turns the same
// streaming kernels into a long-lived, incrementally-fed handle — the unit
// the serve layer multiplexes by the thousand.  One Session owns one
// scenario's realized detector instances plus per-stream state (step
// counter, latched first alarms) and consumes samples one at a time:
//
//   Session s(blueprint);
//   for (double norm : stream) {
//     const SessionVerdict v = s.feed_norm(norm);
//     if (v.any()) ...            // detectors that alarmed at THIS instant
//   }
//
// Equivalence contract (pinned by tests/session_test.cpp): feeding a
// residual series sample-by-sample produces exactly the first_alarms()
// DetectorBank::evaluate / evaluate_norms reports for the same series —
// including the bank's stop-at-first-alarm semantics (an alarmed detector
// is latched and never stepped again), and including across a
// snapshot()/restore() boundary anywhere mid-stream.
//
// Snapshot format (version 1): a compact binary payload wrapped in the
// PR-6 cache integrity framing ("sha256:<hex>\n" + payload, see
// util::frame_with_digest).  The payload is
//
//   magic "CPSS" | u32 version | str scenario | u32 n_detectors |
//   u64 steps_fed | per detector: u8 alarmed [u64 first_alarm]
//                                 u32 state_len + OnlineDetector state
//
// Versioning rules: the version bumps on ANY layout change (field order,
// widths, per-kind state encodings); restore() rejects unknown versions
// and never guesses — a snapshot is only portable between builds whose
// detector-state encodings agree, which the u32 version asserts.  Adding a
// new detector KIND does not bump the version (per-detector state blocks
// are length-prefixed, so unknown state never misparses known fields).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "detect/online.hpp"

namespace cpsguard::detect {

/// Immutable, shareable recipe for one scenario's sessions: detector labels
/// and factories plus the precomputed norm wiring.  Realize it once (see
/// scenario::make_session_blueprint), then every Session::Session(...) is
/// cheap — clone N small detector instances, no calibration, no solver.
class SessionBlueprint {
 public:
  /// `labels` and `factories` must be the same length and non-empty; every
  /// factory is probed once for its shared norm.
  SessionBlueprint(std::string scenario, std::vector<std::string> labels,
                   std::vector<DetectorFactory> factories);

  const std::string& scenario() const { return scenario_; }
  std::size_t size() const { return factories_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }
  std::unique_ptr<OnlineDetector> instantiate(std::size_t i) const {
    return factories_[i]();
  }

  /// Distinct shared norms in first-use order (DetectorBank's order);
  /// empty when no detector streams a norm.
  const std::vector<control::Norm>& norms() const { return norms_; }
  /// Norm slot of detector i (index into norms()), -1 = full residue.
  std::ptrdiff_t norm_slot(std::size_t i) const { return norm_slots_[i]; }
  /// True when every detector streams one single shared norm — the
  /// feed_norm() fast-path eligibility.
  bool single_norm() const;

  /// A positive reference magnitude for synthetic load (the largest level
  /// any detector compares against); 1.0 when none is derivable.
  double reference_level() const { return reference_level_; }
  void set_reference_level(double level);

 private:
  std::string scenario_;
  std::vector<std::string> labels_;
  std::vector<DetectorFactory> factories_;
  std::vector<control::Norm> norms_;
  std::vector<std::ptrdiff_t> norm_slots_;
  double reference_level_ = 1.0;
};

/// What one fed sample did: bit i of `new_alarms` is set when detector i
/// (i < 64) alarmed for the first time at this instant.  Detectors beyond
/// 64 still latch (see Session::first_alarms()) but have no mask bit.
struct SessionVerdict {
  std::uint64_t step = 0;        ///< 0-based index of the consumed instant
  std::uint64_t new_alarms = 0;  ///< newly-latched detectors, bitmask
  bool any() const { return new_alarms != 0; }
};

class Session {
 public:
  explicit Session(std::shared_ptr<const SessionBlueprint> blueprint);

  const SessionBlueprint& blueprint() const { return *blueprint_; }
  std::size_t size() const { return detectors_.size(); }
  std::size_t steps_fed() const { return step_; }

  /// Consumes one residual sample.  Matches DetectorBank::evaluate: each
  /// distinct norm is computed once and shared; a detector that already
  /// alarmed is never stepped again.
  SessionVerdict feed(const linalg::Vector& z);
  /// Norm fast path: consumes one precomputed residual-norm sample.
  /// Requires blueprint().single_norm() (throws util::InvalidArgument
  /// otherwise); matches DetectorBank::evaluate_norms bit for bit.
  SessionVerdict feed_norm(double residue_norm);

  /// First alarming instant per detector (latched), nullopt = still silent.
  const std::vector<std::optional<std::size_t>>& first_alarms() const {
    return first_alarms_;
  }
  /// first_alarms() folded to a bitmask over detectors 0..63.
  std::uint64_t alarm_mask() const;

  /// Rewinds every detector and the stream position to the pre-run state.
  void reset();

  /// Versioned, integrity-framed byte serialization of the full mutable
  /// state (see the format comment at the top of this header).
  std::string snapshot() const;
  /// Rebuilds a session from snapshot() bytes.  The blueprint must realize
  /// the same scenario (name and detector count are checked; the digest
  /// catches corruption).  Throws util::InvalidArgument otherwise.
  static Session restore(std::shared_ptr<const SessionBlueprint> blueprint,
                         const std::string& snapshot);
  /// Peeks the scenario name out of snapshot() bytes without a blueprint
  /// (integrity-checked) — how a server picks the blueprint to restore
  /// against.  Throws util::InvalidArgument on corrupt frames.
  static std::string snapshot_scenario(const std::string& snapshot);

 private:
  std::shared_ptr<const SessionBlueprint> blueprint_;
  std::vector<std::unique_ptr<OnlineDetector>> detectors_;
  std::vector<std::optional<std::size_t>> first_alarms_;
  std::vector<double> norm_scratch_;  // one value per distinct norm
  std::size_t step_ = 0;
};

}  // namespace cpsguard::detect
