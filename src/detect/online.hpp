// online.hpp — streaming (one-sample-at-a-time) alarm evaluation.
//
// Every runtime detector in the library reduces to the same shape: consume
// the residue of each sampling instant in order, keep whatever running
// state the decision rule needs, and report the first alarming instant.
// OnlineDetector is that shape made explicit — `reset()` rewinds to the
// pre-run state, `step(z)` consumes one residue and says whether this
// instant alarms.  The trace-based detector classes (detect/detector.hpp)
// are thin wrappers that stream a recorded trace through the same rule, so
// the alarm semantics live in exactly one place per detector kind.
//
// DetectorBank is the fan-in: N detector configurations evaluated in one
// pass over a recorded residue trace, with the residue-norm series computed
// once per distinct norm and shared by every norm-consuming detector.  The
// Monte-Carlo protocols (detect/far.hpp) and the sweep engine's
// simulation groups (sweep/campaign.hpp) are built on it: simulate once,
// sweep the whole bank over the recorded residues.
//
// Instances are deliberately stateful and NOT thread-safe; concurrent
// evaluation hands every worker its own instance via DetectorFactory
// (or OnlineDetector::clone()).
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "control/norm.hpp"
#include "control/trace.hpp"
#include "detect/threshold.hpp"
#include "linalg/matrix.hpp"
#include "stl/formula.hpp"
#include "util/bytes.hpp"

namespace cpsguard::detect {

/// The threshold alarm rule, shared by every entry point (streaming,
/// trace-based, series-based) so they can never diverge: instant k alarms
/// when the (filled) threshold there is set and the residue norm reaches
/// it.  `filled` must come from ThresholdVector::filled(); instants beyond
/// it reuse its last entry.
inline bool threshold_alarm_at(const ThresholdVector& filled, std::size_t k,
                               double residue_norm) {
  if (filled.empty()) return false;
  const double th = filled[std::min(k, filled.size() - 1)];
  return th > 0.0 && residue_norm >= th;
}

/// The CUSUM statistic update g_k = max(0, g_{k-1} + ||z_k|| - drift),
/// shared by the streaming detector and the plotting series.
inline double cusum_update(double g, double residue_norm, double drift) {
  return std::max(0.0, g + residue_norm - drift);
}

/// The chi-squared statistic g_k = z' S^{-1} z (S = innovation covariance).
double chi2_statistic(const linalg::Matrix& s_inv, const linalg::Vector& z);

/// Streaming alarm evaluator: feed the residues z_1..z_T of one run in
/// order; step() returns true at every alarming instant.  reset() rewinds
/// all running state so the instance can evaluate the next run.
class OnlineDetector {
 public:
  virtual ~OnlineDetector() = default;

  /// Rewinds to the pre-run state.
  virtual void reset() = 0;

  /// Consumes the next instant's residue; true when this instant alarms.
  virtual bool step(const linalg::Vector& z) = 0;

  /// When the detector consumes only ||z|| under a fixed norm, that norm;
  /// DetectorBank then feeds step_norm() from a norm series computed once
  /// and shared across the whole bank.  nullopt = needs the full residue.
  virtual std::optional<control::Norm> shared_norm() const {
    return std::nullopt;
  }

  /// Norm fast path; only called when shared_norm() is set.
  virtual bool step_norm(double residue_norm);

  /// Fresh instance with the same configuration and pre-run state.
  virtual std::unique_ptr<OnlineDetector> clone() const = 0;

  /// Serializes the detector's MUTABLE running state (never its
  /// configuration) into `out`; load_state() restores it bit-exactly onto
  /// an identically configured instance.  The pair is what makes
  /// detect::Session::snapshot()/restore() exact: a restored detector
  /// continues the stream as if it had never stopped.  Stateless rules
  /// (chi-squared) write nothing — the default.
  virtual void save_state(util::ByteWriter& out) const;
  /// Inverse of save_state(); throws util::InvalidArgument on bytes that do
  /// not decode as this detector kind's state.
  virtual void load_state(util::ByteReader& in);
};

/// Produces a fresh streaming instance per evaluation pass — the
/// thread-safe currency of the Monte-Carlo protocols (stateful detectors
/// such as CUSUM must never share an instance across runs or workers).
using DetectorFactory = std::function<std::unique_ptr<OnlineDetector>()>;

/// Base for detectors that consume only the residue norm: step() applies
/// the configured norm and defers to step_norm().
class NormOnlineDetector : public OnlineDetector {
 public:
  explicit NormOnlineDetector(control::Norm norm) : norm_(norm) {}

  std::optional<control::Norm> shared_norm() const final { return norm_; }
  bool step(const linalg::Vector& z) final {
    return step_norm(control::vector_norm(z, norm_));
  }
  bool step_norm(double residue_norm) override = 0;

 protected:
  control::Norm norm_;
};

/// Streaming face of ResidueDetector: ||z_k|| >= Th[k] on the filled
/// threshold vector.
class ThresholdOnline final : public NormOnlineDetector {
 public:
  ThresholdOnline(const ThresholdVector& thresholds, control::Norm norm);
  /// Shares already-filled threshold storage: clone() goes through this, so
  /// a million sessions hold ONE copy of the staircase, not a million —
  /// the per-session footprint a service table depends on.
  ThresholdOnline(std::shared_ptr<const ThresholdVector> filled,
                  control::Norm norm);

  void reset() override { k_ = 0; }
  bool step_norm(double residue_norm) override {
    return threshold_alarm_at(*thresholds_, k_++, residue_norm);
  }
  std::unique_ptr<OnlineDetector> clone() const override;
  void save_state(util::ByteWriter& out) const override;
  void load_state(util::ByteReader& in) override;

  const ThresholdVector& thresholds() const { return *thresholds_; }

 private:
  std::shared_ptr<const ThresholdVector> thresholds_;  // filled(), shared
  std::size_t k_ = 0;
};

/// Streaming face of WindowedDetector: k-of-m exceedances over the sliding
/// window [i-m+1, i].
class WindowedOnline final : public NormOnlineDetector {
 public:
  /// Requires 1 <= k <= m.
  WindowedOnline(const ThresholdVector& thresholds, control::Norm norm,
                 std::size_t k, std::size_t m);
  /// Shared-threshold variant (see ThresholdOnline); clone() uses it.
  WindowedOnline(std::shared_ptr<const ThresholdVector> filled,
                 control::Norm norm, std::size_t k, std::size_t m);

  void reset() override;
  bool step_norm(double residue_norm) override;
  std::unique_ptr<OnlineDetector> clone() const override;
  void save_state(util::ByteWriter& out) const override;
  void load_state(util::ByteReader& in) override;

 private:
  std::shared_ptr<const ThresholdVector> thresholds_;  // filled(), shared
  std::size_t k_;
  std::size_t m_;
  std::vector<bool> window_;  // last m exceedance flags
  std::size_t count_ = 0;     // exceedances within the window
  std::size_t i_ = 0;         // current instant
};

/// Streaming face of CusumDetector: g_k via cusum_update, alarm when
/// g_k > limit.
class CusumOnline final : public NormOnlineDetector {
 public:
  CusumOnline(double drift, double limit, control::Norm norm);

  void reset() override { g_ = 0.0; }
  bool step_norm(double residue_norm) override {
    g_ = cusum_update(g_, residue_norm, drift_);
    return g_ > limit_;
  }
  std::unique_ptr<OnlineDetector> clone() const override;
  void save_state(util::ByteWriter& out) const override;
  void load_state(util::ByteReader& in) override;

 private:
  double drift_;
  double limit_;
  double g_ = 0.0;
};

/// Streaming face of Chi2Detector: z' S^{-1} z > limit.  Needs the full
/// residue vector, so it takes the slow lane of a DetectorBank.
class Chi2Online final : public OnlineDetector {
 public:
  /// `innovation_covariance` is S from the Kalman design (inverted here).
  Chi2Online(const linalg::Matrix& innovation_covariance, double limit);

  /// For wrappers that already hold S^{-1} (detect::Chi2Detector).
  static Chi2Online from_inverse(linalg::Matrix s_inv, double limit);

  void reset() override {}
  bool step(const linalg::Vector& z) override {
    return chi2_statistic(s_inv_, z) > limit_;
  }
  std::unique_ptr<OnlineDetector> clone() const override;

 private:
  struct FromInverseTag {};
  Chi2Online(FromInverseTag, linalg::Matrix s_inv, double limit);

  linalg::Matrix s_inv_;
  double limit_;
};

/// Streaming monitor for a bounded STL formula over the residue signal
/// (stl::residue(i) atoms only; any other signal kind is rejected).  The
/// formula is the PASS condition; with window depth d, step k >= d
/// evaluates it at instant k - d over the buffered residues and alarms
/// when it fails — i.e. the alarm fires at the step that completes a
/// violating window, the earliest instant an online monitor can know.
/// Steps before the first complete window never alarm.
class StlResidueOnline final : public OnlineDetector {
 public:
  explicit StlResidueOnline(stl::Formula pass_condition);

  void reset() override;
  bool step(const linalg::Vector& z) override;
  std::unique_ptr<OnlineDetector> clone() const override;
  void save_state(util::ByteWriter& out) const override;
  void load_state(util::ByteReader& in) override;

  const stl::Formula& formula() const { return formula_; }

 private:
  stl::Formula formula_;
  std::size_t depth_;
  control::Trace buffer_;  // only z is populated
};

/// One run's recorded residues in flat row-major storage (steps × dim):
/// one allocation per run instead of one per instant.  The storage format
/// of FarSimulation's record and the DetectorBank hot path.
class ResidueRecord {
 public:
  /// Copies a trace's residue vectors (all of equal dimension).
  void assign(const std::vector<linalg::Vector>& z);

  std::size_t steps() const { return steps_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return steps_ == 0; }
  /// Residue z_k as a raw span of dim() entries.
  const double* row(std::size_t k) const { return data_.data() + k * dim_; }

 private:
  std::vector<double> data_;
  std::size_t steps_ = 0;
  std::size_t dim_ = 0;
};

/// One run's residual-norm series under a fixed list of norm kinds, flat
/// [kind][step] storage — the record of a norm-only simulation.  Next to
/// ResidueRecord's O(steps × dim) this keeps O(steps) per norm kind, which
/// is what lets record-once/judge-many campaigns scale to long horizons.
/// The norm kinds themselves are carried by the owner (they are shared by
/// every run of a batch).
class NormRecord {
 public:
  /// Copies the series (one per norm kind, all of equal length) into one
  /// flat allocation.
  void assign(const std::vector<std::vector<double>>& series);

  std::size_t steps() const { return steps_; }
  std::size_t kinds() const { return kinds_; }
  bool empty() const { return steps_ == 0; }
  /// The series of norm kind `slot`, steps() entries.
  const double* series(std::size_t slot) const {
    return data_.data() + slot * steps_;
  }

 private:
  std::vector<double> data_;
  std::size_t steps_ = 0;
  std::size_t kinds_ = 0;
};

/// The norm-only capability query: when every detector the factories
/// produce consumes only a shared residual norm (shared_norm() set), the
/// distinct norms of the bank in first-use order; nullopt as soon as any
/// detector needs full residues.  Each factory is instantiated once — the
/// currency protocols use to decide whether their simulate phase may
/// record norm series instead of residue traces.
std::optional<std::vector<control::Norm>> shared_norms(
    const std::vector<DetectorFactory>& factories);

/// First alarming instant when `trace` (its residues) is streamed through
/// `det` from a fresh reset; nullopt when silent.
std::optional<std::size_t> streaming_first_alarm(OnlineDetector& det,
                                                 const control::Trace& trace);
std::optional<std::size_t> streaming_first_alarm(
    OnlineDetector& det, const std::vector<linalg::Vector>& residues);

/// N detector configurations evaluated in one pass over a recorded residue
/// trace.  Norm-consuming detectors (shared_norm() set) are fed from a
/// residue-norm series computed once per distinct norm, so a bank of N
/// threshold variants costs one norm computation per instant — the
/// decomposition behind the sweep engine's simulation groups.
class DetectorBank {
 public:
  /// Adds a detector; returns its index.
  std::size_t add(std::unique_ptr<OnlineDetector> detector);
  std::size_t size() const { return entries_.size(); }
  OnlineDetector& at(std::size_t i) { return *entries_[i].detector; }

  /// Streams one run's residues through every detector from a fresh
  /// reset(); first_alarms[i] = first alarming instant of detector i.
  void evaluate(const std::vector<linalg::Vector>& residues,
                std::vector<std::optional<std::size_t>>& first_alarms);
  /// Same over a flat record — the allocation-free per-run hot path.
  void evaluate(const ResidueRecord& record,
                std::vector<std::optional<std::size_t>>& first_alarms);
  void evaluate(const control::Trace& trace,
                std::vector<std::optional<std::size_t>>& first_alarms) {
    evaluate(trace.z, first_alarms);
  }
  /// Streams one norm-only-recorded run: series[s] holds the residual-norm
  /// series of `norms[s]` (all of `steps` entries).  Every bank entry must
  /// consume one of those norms — full-residue detectors cannot ride a
  /// norm-only record, and a missing norm kind throws util::InvalidArgument.
  void evaluate_norms(const std::vector<control::Norm>& norms,
                      const std::vector<std::vector<double>>& series,
                      std::vector<std::optional<std::size_t>>& first_alarms);
  /// Same over the flat record produced by a norm-only phase 1.
  void evaluate_norms(const std::vector<control::Norm>& norms,
                      const NormRecord& record,
                      std::vector<std::optional<std::size_t>>& first_alarms);
  /// Lane view of a batched norm-only simulation (sim::NormLaneGroup):
  /// series[s][k * width + lane] is instant k of norm kind s for the given
  /// lane.  Evaluates that lane in place — no de-interleaving copy —
  /// equivalently to evaluate_norms on the lane's extracted series.
  void evaluate_norms_lane(const std::vector<control::Norm>& norms,
                           const double* const* series, std::size_t steps,
                           std::size_t width, std::size_t lane,
                           std::vector<std::optional<std::size_t>>& first_alarms);

 private:
  struct Entry {
    std::unique_ptr<OnlineDetector> detector;
    std::ptrdiff_t norm_slot;  // index into norms_, -1 = full residue
  };

  /// Shared body of the norm-only overloads: series[s] = the span of
  /// norms[s], `steps` entries spaced `stride` apart (1 = contiguous,
  /// lane width for the lane-interleaved view).
  void evaluate_norm_spans(const std::vector<control::Norm>& norms,
                           const double* const* series, std::size_t steps,
                           std::size_t stride,
                           std::vector<std::optional<std::size_t>>& first_alarms);

  std::vector<Entry> entries_;
  std::vector<control::Norm> norms_;               // distinct shared norms
  std::vector<std::vector<double>> norm_series_;  // reused per run
  linalg::Vector scratch_;  // row view for full-residue detectors
  std::vector<const double*> span_scratch_;  // norm-only span table, reused
  std::vector<std::size_t> slot_scratch_;    // norm-slot mapping, reused
};

}  // namespace cpsguard::detect
