#include "detect/threshold.hpp"

#include <algorithm>
#include <sstream>

#include "util/status.hpp"
#include "util/table.hpp"

namespace cpsguard::detect {

using util::require;

ThresholdVector ThresholdVector::constant(std::size_t horizon, double value) {
  require(value > 0.0, "ThresholdVector::constant: value must be positive");
  return ThresholdVector(std::vector<double>(horizon, value));
}

double ThresholdVector::operator[](std::size_t k) const {
  require(k < values_.size(), "ThresholdVector: index out of range");
  return values_[k];
}

void ThresholdVector::set(std::size_t k, double value) {
  require(k < values_.size(), "ThresholdVector::set: index out of range");
  require(value >= 0.0, "ThresholdVector::set: value must be non-negative");
  values_[k] = value;
}

std::size_t ThresholdVector::num_set() const {
  return static_cast<std::size_t>(
      std::count_if(values_.begin(), values_.end(), [](double v) { return v > 0.0; }));
}

bool ThresholdVector::monotone_decreasing() const {
  double prev = 0.0;
  bool seen = false;
  for (double v : values_) {
    if (v <= 0.0) continue;
    if (seen && v > prev + 1e-12) return false;
    prev = v;
    seen = true;
  }
  return true;
}

double ThresholdVector::min_set() const {
  double best = 0.0;
  for (double v : values_)
    if (v > 0.0 && (best == 0.0 || v < best)) best = v;
  return best;
}

double ThresholdVector::max_set() const {
  double best = 0.0;
  for (double v : values_) best = std::max(best, v);
  return best;
}

ThresholdVector ThresholdVector::filled() const {
  ThresholdVector out(*this);
  // Find the first set entry to seed the prefix.
  double current = 0.0;
  for (double v : values_)
    if (v > 0.0) {
      current = v;
      break;
    }
  if (current == 0.0) return out;  // nothing set anywhere
  for (auto& v : out.values_) {
    if (v > 0.0)
      current = v;
    else
      v = current;
  }
  return out;
}

std::string ThresholdVector::str() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i) out << ' ';
    out << (values_[i] > 0.0 ? util::format_double(values_[i]) : std::string("-"));
  }
  out << ']';
  return out.str();
}

}  // namespace cpsguard::detect
