#include "detect/noise_floor.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace cpsguard::detect {

std::size_t NoiseFloor::instants_below(const ThresholdVector& thresholds) const {
  const ThresholdVector filled = thresholds.filled();
  std::size_t count = 0;
  for (std::size_t k = 0; k < quantiles.size(); ++k) {
    const std::size_t idx = std::min(k, filled.size() - 1);
    if (filled.size() > 0 && filled[idx] > 0.0 && filled[idx] <= quantiles[k]) ++count;
  }
  return count;
}

NoiseFloor estimate_noise_floor(const control::ClosedLoop& loop,
                                const NoiseFloorSetup& setup) {
  util::require(setup.num_runs > 0, "estimate_noise_floor: num_runs must be positive");
  util::require(setup.quantile > 0.0 && setup.quantile < 1.0,
                "estimate_noise_floor: quantile must be in (0, 1)");
  util::require(setup.noise_bounds.size() == loop.config().plant.num_outputs(),
                "estimate_noise_floor: noise bound dimension mismatch");

  util::Rng rng(setup.seed);
  // samples[k][run] = ||z_k|| of that run.
  std::vector<std::vector<double>> samples(setup.horizon);
  for (auto& s : samples) s.reserve(setup.num_runs);

  NoiseFloor out;
  for (std::size_t run = 0; run < setup.num_runs; ++run) {
    const control::Signal noise =
        control::bounded_uniform_signal(rng, setup.horizon, setup.noise_bounds);
    const control::Trace tr =
        loop.simulate(setup.horizon, nullptr, nullptr, &noise);
    const std::vector<double> norms = tr.residue_norms(setup.norm);
    for (std::size_t k = 0; k < setup.horizon; ++k) {
      samples[k].push_back(norms[k]);
      out.peak = std::max(out.peak, norms[k]);
    }
  }

  out.quantiles.resize(setup.horizon);
  for (std::size_t k = 0; k < setup.horizon; ++k) {
    auto& s = samples[k];
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(s.size() - 1),
                         std::floor(setup.quantile * static_cast<double>(s.size()))));
    std::nth_element(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(idx), s.end());
    out.quantiles[k] = s[idx];
  }
  return out;
}

}  // namespace cpsguard::detect
