#include "detect/noise_floor.hpp"

#include <algorithm>
#include <cmath>

#include "control/norm.hpp"
#include "sim/monte_carlo.hpp"
#include "util/status.hpp"

namespace cpsguard::detect {

std::size_t NoiseFloor::instants_below(const ThresholdVector& thresholds) const {
  const ThresholdVector filled = thresholds.filled();
  std::size_t count = 0;
  for (std::size_t k = 0; k < quantiles.size(); ++k) {
    const std::size_t idx = std::min(k, filled.size() - 1);
    if (filled.size() > 0 && filled[idx] > 0.0 && filled[idx] <= quantiles[k]) ++count;
  }
  return count;
}

NoiseFloorSamples::NoiseFloorSamples(const control::ClosedLoop& loop,
                                     const NoiseFloorSetup& setup) {
  util::require(setup.num_runs > 0, "NoiseFloorSamples: num_runs must be positive");
  util::require(setup.noise_bounds.size() == loop.config().plant.num_outputs(),
                "NoiseFloorSamples: noise bound dimension mismatch");

  // samples[k][run] = ||z_k|| of that run; every worker writes only its own
  // run column, so the fan-out needs no synchronization.
  samples_.resize(setup.horizon);
  for (auto& s : samples_) s.resize(setup.num_runs);

  const sim::BatchRunner runner(setup.threads);
  if (sim::norm_only_enabled()) {
    // The floor consumes nothing but ||z_k||, so this protocol is always
    // norm-only eligible: the kernel computes the norms on the fly and no
    // trace is ever materialized.  Same values, same estimator.
    sim::run_noise_norm_batch(
        runner, loop, setup.num_runs, setup.horizon, setup.noise_bounds,
        setup.seed, /*index_offset=*/0, {setup.norm},
        [&](std::size_t run, std::size_t /*slot*/,
            const std::vector<std::vector<double>>& series,
            const double* /*x_final*/) {
          for (std::size_t k = 0; k < setup.horizon; ++k)
            samples_[k][run] = series[0][k];
        });
  } else {
    sim::run_noise_batch(
        runner, loop, setup.num_runs, setup.horizon, setup.noise_bounds, setup.seed,
        /*index_offset=*/0, [&](std::size_t run, const control::Trace& tr) {
          for (std::size_t k = 0; k < setup.horizon; ++k)
            samples_[k][run] = control::vector_norm(tr.z[k], setup.norm);
        });
  }

  for (std::size_t k = 0; k < setup.horizon; ++k)
    for (double v : samples_[k]) peak_ = std::max(peak_, v);
}

NoiseFloor NoiseFloorSamples::floor(double quantile) const {
  util::require(quantile > 0.0 && quantile < 1.0,
                "NoiseFloorSamples: quantile must be in (0, 1)");
  NoiseFloor out;
  out.peak = peak_;
  out.quantiles.resize(samples_.size());
  std::vector<double> column;
  for (std::size_t k = 0; k < samples_.size(); ++k) {
    column = samples_[k];
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(column.size() - 1),
                         std::floor(quantile * static_cast<double>(column.size()))));
    std::nth_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(idx),
                     column.end());
    out.quantiles[k] = column[idx];
  }
  return out;
}

NoiseFloor estimate_noise_floor(const control::ClosedLoop& loop,
                                const NoiseFloorSetup& setup) {
  // Validate the quantile before simulating anything.
  util::require(setup.quantile > 0.0 && setup.quantile < 1.0,
                "estimate_noise_floor: quantile must be in (0, 1)");
  return NoiseFloorSamples(loop, setup).floor(setup.quantile);
}

}  // namespace cpsguard::detect
