// far.hpp — Monte-Carlo false-alarm-rate evaluation (paper Section IV).
//
// Protocol from the paper: generate N random bounded measurement-noise
// vectors small enough that the performance criterion is maintained,
// discard the ones the existing monitoring system (mdc) flags, then report
// the fraction of the remaining benign runs each threshold detector alarms
// on.  Everything is driven from one Rng seed for reproducibility.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "control/closed_loop.hpp"
#include "control/noise.hpp"
#include "detect/detector.hpp"
#include "monitor/monitor.hpp"
#include "util/random.hpp"

namespace cpsguard::detect {

/// One candidate detector entered into the comparison.
struct FarCandidate {
  std::string name;
  ResidueDetector detector;
};

struct FarSetup {
  std::size_t num_runs = 1000;         ///< N noise vectors
  std::size_t horizon = 50;            ///< T samples per run
  linalg::Vector noise_bounds;         ///< per-output bound of the uniform noise
  /// Run i draws its noise from util::Rng::substream(seed, i), so the
  /// report is bit-identical for every `threads` setting.
  std::uint64_t seed = 1;
  /// Worker threads for the run fan-out: 1 = serial (default), 0 = one per
  /// hardware thread.
  std::size_t threads = 1;
  /// Performance check: runs violating it are discarded (the paper draws
  /// noise "such that pfc is maintained").  Null = keep everything.  Must be
  /// thread-safe when threads != 1 (it is invoked concurrently).
  std::function<bool(const control::Trace&)> pfc;
};

struct FarRow {
  std::string name;
  std::size_t alarms = 0;
  std::size_t evaluated = 0;
  double rate() const { return evaluated ? static_cast<double>(alarms) / static_cast<double>(evaluated) : 0.0; }
};

struct FarReport {
  std::size_t total_runs = 0;
  std::size_t discarded_by_pfc = 0;  ///< noise too large: pfc violated
  std::size_t discarded_by_mdc = 0;  ///< flagged by the monitoring system
  std::vector<FarRow> rows;          ///< one per candidate detector
};

/// Runs the protocol for `candidates` against the given closed loop and
/// monitoring system.
FarReport evaluate_far(const control::ClosedLoop& loop, const monitor::MonitorSet& monitors,
                       const std::vector<FarCandidate>& candidates, const FarSetup& setup);

}  // namespace cpsguard::detect
