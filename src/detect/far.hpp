// far.hpp — Monte-Carlo false-alarm-rate evaluation (paper Section IV).
//
// Protocol from the paper: generate N random bounded measurement-noise
// vectors small enough that the performance criterion is maintained,
// discard the ones the existing monitoring system (mdc) flags, then report
// the fraction of the remaining benign runs each detector alarms on.
// Everything is driven from one Rng seed for reproducibility.
//
// The protocol is two-phase.  FarSimulation is phase 1: simulate the noise
// batch ONCE, recording each run's pfc/mdc verdict and — for the runs that
// survive — its residue trace.  evaluate() is phase 2: stream any detector
// bank over the recorded residues.  Comparing N detector settings (or a
// sweep campaign's whole detector axis) therefore costs one simulation
// batch plus N cheap streaming passes, instead of N simulation batches.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "control/closed_loop.hpp"
#include "control/noise.hpp"
#include "detect/detector.hpp"
#include "detect/online.hpp"
#include "monitor/monitor.hpp"
#include "sim/config.hpp"
#include "util/random.hpp"

namespace cpsguard::detect {

/// One candidate detector entered into the comparison: a factory producing
/// a fresh streaming instance per evaluation pass, so stateful detectors
/// (CUSUM) can never share running state across runs or worker threads.
struct FarCandidate {
  FarCandidate(std::string name, ResidueDetector detector);
  FarCandidate(std::string name, DetectorFactory factory);

  std::string name;
  DetectorFactory factory;
};

/// Monte-Carlo knobs (sim::MonteCarloConfig: num_runs, horizon,
/// noise_bounds, seed, threads) plus the protocol's pfc filter.
struct FarSetup : sim::MonteCarloConfig {
  FarSetup() { num_runs = 1000; }  // the paper's 1000 noise vectors

  /// Performance check: runs violating it are discarded (the paper draws
  /// noise "such that pfc is maintained").  Null = keep everything.  Must be
  /// thread-safe when threads != 1 (it is invoked concurrently).
  std::function<bool(const control::Trace&)> pfc;

  /// Final-state face of the same check, for criteria decidable from the
  /// final plant state x_{T+1} alone (synth::ReachCriterion — the paper's
  /// pfc).  When set, the norm-only fast path stays eligible with the pfc
  /// filter active: the simulate phase exposes x_{T+1} without
  /// materializing a trace, and this predicate replaces `pfc` there.  Must
  /// agree with `pfc` on every run (the scenario layer derives both from
  /// one synth::Criterion, and x_{T+1} is bit-identical between the two
  /// paths) and be thread-safe like it.
  std::function<bool(const double* x_final, std::size_t n)> pfc_final;
};

struct FarRow {
  std::string name;
  std::size_t alarms = 0;
  std::size_t evaluated = 0;
  double rate() const { return evaluated ? static_cast<double>(alarms) / static_cast<double>(evaluated) : 0.0; }
};

struct FarReport {
  std::size_t total_runs = 0;
  std::size_t discarded_by_pfc = 0;  ///< noise too large: pfc violated
  std::size_t discarded_by_mdc = 0;  ///< flagged by the monitoring system
  std::vector<FarRow> rows;          ///< one per candidate detector
};

/// Phase 1 of the FAR protocol: the simulated noise batch with per-run
/// verdicts and the residue traces of the evaluated (kept) runs.
class FarSimulation {
 public:
  /// Simulates setup.num_runs noise-only runs of `loop` (parallel across
  /// setup.threads, bit-identical at any thread count) and records the
  /// residues of every run that passes the pfc filter and the monitors.
  ///
  /// When `norm_only` names the residual norms every later-evaluated bank
  /// consumes (detect::shared_norms) AND the protocol is eligible — pfc
  /// filter absent or final-state-streamable (setup.pfc_final), empty
  /// monitor set, and sim::norm_only_enabled() — phase 1 records only
  /// those norm series:
  /// O(steps) per kept run per norm kind instead of O(steps·dim) residues,
  /// with no trace materialized at all.  evaluate() reports are
  /// bit-identical either way; banks needing more than the recorded norms
  /// are rejected at evaluate() time.
  FarSimulation(const control::ClosedLoop& loop,
                const monitor::MonitorSet& monitors, const FarSetup& setup,
                const std::vector<control::Norm>* norm_only = nullptr);

  /// True when phase 1 recorded residual-norm series instead of residues.
  bool norm_only() const { return !record_norms_.empty(); }

  std::size_t total_runs() const { return evaluated_.size(); }
  std::size_t discarded_by_pfc() const { return discarded_by_pfc_; }
  std::size_t discarded_by_mdc() const { return discarded_by_mdc_; }
  std::size_t evaluated_runs() const { return evaluated_runs_; }

  /// Phase 2: sweeps the candidates (as one DetectorBank) over the recorded
  /// runs and reports per-candidate alarm rates.  Deterministic and cheap —
  /// call it as many times as there are detector settings to compare.
  FarReport evaluate(const std::vector<FarCandidate>& candidates) const;

 private:
  std::size_t discarded_by_pfc_ = 0;
  std::size_t discarded_by_mdc_ = 0;
  std::size_t evaluated_runs_ = 0;
  std::vector<std::uint8_t> evaluated_;  ///< per-run keep flag
  /// Residues of run i (flat, one allocation per kept run); empty when the
  /// run was discarded.  Unused in norm-only mode.
  std::vector<ResidueRecord> residues_;
  /// Norm-only record: the norm kinds and, per run, their series.
  std::vector<control::Norm> record_norms_;
  std::vector<NormRecord> norm_records_;
};

/// The norms every candidate's detector consumes, when they all stream
/// norms (detect::shared_norms over the candidates' factories); nullopt as
/// soon as one needs full residues.
std::optional<std::vector<control::Norm>> candidate_shared_norms(
    const std::vector<FarCandidate>& candidates);

/// Runs the whole protocol (phase 1 + phase 2) for `candidates` against the
/// given closed loop and monitoring system.
FarReport evaluate_far(const control::ClosedLoop& loop, const monitor::MonitorSet& monitors,
                       const std::vector<FarCandidate>& candidates, const FarSetup& setup);

}  // namespace cpsguard::detect
