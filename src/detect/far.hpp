// far.hpp — Monte-Carlo false-alarm-rate evaluation (paper Section IV).
//
// Protocol from the paper: generate N random bounded measurement-noise
// vectors small enough that the performance criterion is maintained,
// discard the ones the existing monitoring system (mdc) flags, then report
// the fraction of the remaining benign runs each threshold detector alarms
// on.  Everything is driven from one Rng seed for reproducibility.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "control/closed_loop.hpp"
#include "control/noise.hpp"
#include "detect/detector.hpp"
#include "monitor/monitor.hpp"
#include "sim/config.hpp"
#include "util/random.hpp"

namespace cpsguard::detect {

/// One candidate detector entered into the comparison.  Any alarm predicate
/// qualifies (residue thresholds, chi-squared, CUSUM, windowed policies...);
/// it is invoked concurrently when the protocol runs multi-threaded, so it
/// must be thread-safe (the bundled detectors are: triggered() is const and
/// stateless per call).
struct FarCandidate {
  FarCandidate(std::string name, ResidueDetector detector);
  FarCandidate(std::string name,
               std::function<bool(const control::Trace&)> triggered);

  std::string name;
  std::function<bool(const control::Trace&)> triggered;
};

/// Monte-Carlo knobs (sim::MonteCarloConfig: num_runs, horizon,
/// noise_bounds, seed, threads) plus the protocol's pfc filter.
struct FarSetup : sim::MonteCarloConfig {
  FarSetup() { num_runs = 1000; }  // the paper's 1000 noise vectors

  /// Performance check: runs violating it are discarded (the paper draws
  /// noise "such that pfc is maintained").  Null = keep everything.  Must be
  /// thread-safe when threads != 1 (it is invoked concurrently).
  std::function<bool(const control::Trace&)> pfc;
};

struct FarRow {
  std::string name;
  std::size_t alarms = 0;
  std::size_t evaluated = 0;
  double rate() const { return evaluated ? static_cast<double>(alarms) / static_cast<double>(evaluated) : 0.0; }
};

struct FarReport {
  std::size_t total_runs = 0;
  std::size_t discarded_by_pfc = 0;  ///< noise too large: pfc violated
  std::size_t discarded_by_mdc = 0;  ///< flagged by the monitoring system
  std::vector<FarRow> rows;          ///< one per candidate detector
};

/// Runs the protocol for `candidates` against the given closed loop and
/// monitoring system.
FarReport evaluate_far(const control::ClosedLoop& loop, const monitor::MonitorSet& monitors,
                       const std::vector<FarCandidate>& candidates, const FarSetup& setup);

}  // namespace cpsguard::detect
