// threshold.hpp — threshold specifications Th for residue detectors.
//
// Following the paper, a threshold specification is a length-T vector; the
// detector alarms at instant k when ||z_k|| >= Th[k].  Entries equal to 0
// mean "no check at this instant" (the synthesis algorithms grow the vector
// threshold-by-threshold from the all-unset state).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cpsguard::detect {

class ThresholdVector {
 public:
  ThresholdVector() = default;
  /// All-unset specification of length `horizon`.
  explicit ThresholdVector(std::size_t horizon) : values_(horizon, 0.0) {}
  /// Adopts explicit values (0 = unset).
  explicit ThresholdVector(std::vector<double> values) : values_(std::move(values)) {}

  /// Constant (static) threshold at every instant.
  static ThresholdVector constant(std::size_t horizon, double value);

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Threshold at instant k; 0 means unset.
  double operator[](std::size_t k) const;
  /// Sets the threshold at instant k.
  void set(std::size_t k, double value);
  /// True when instant k carries a check.
  bool is_set(std::size_t k) const { return (*this)[k] > 0.0; }
  /// Number of instants carrying a check.
  std::size_t num_set() const;

  const std::vector<double>& values() const { return values_; }

  /// True when the SET entries are non-increasing over time — the paper's
  /// monotonically-decreasing-threshold hypothesis.
  bool monotone_decreasing() const;

  /// Smallest set threshold (0 when none set).
  double min_set() const;
  /// Largest set threshold (0 when none set).
  double max_set() const;

  /// Completed copy: unset entries take the value of the nearest EARLIER
  /// set entry (or the first set entry for the prefix) — how a deployed
  /// staircase detector fills the gaps.  Used for FAR evaluation and code
  /// generation.
  ThresholdVector filled() const;

  std::string str() const;

 private:
  std::vector<double> values_;
};

}  // namespace cpsguard::detect
