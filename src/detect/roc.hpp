// roc.hpp — receiver-operating-characteristic sweeps for residue detectors.
//
// The paper reports a single FAR number per detector; an ROC curve is the
// natural extension: scale a threshold vector by s and trace out (false
// alarm rate on benign noise runs, detection rate on attacked runs) as s
// sweeps.  Variable thresholds dominating the static baseline over the
// whole sweep — not just at one operating point — is the strongest form of
// the paper's comparison, which bench/roc_curves regenerates.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "control/closed_loop.hpp"
#include "detect/detector.hpp"
#include "detect/threshold.hpp"
#include "monitor/monitor.hpp"
#include "sim/config.hpp"

namespace cpsguard::detect {

/// One labelled workload for ROC evaluation.
struct RocWorkload {
  /// Benign traces (noise only, monitors silent) — false-alarm side.
  std::vector<control::Trace> benign;
  /// Attacked traces — detection side.
  std::vector<control::Trace> attacked;
};

/// Phase-2 input of the ROC protocol: the workload's residue-norm series
/// under one norm, computed once and shared by every scale, detector and
/// sweep cell evaluated against the workload.  Threshold detection only
/// reads ||z_k||, so the traces themselves never need to be revisited.
struct RocResidues {
  control::Norm norm = control::Norm::kInf;
  std::vector<std::vector<double>> benign;
  std::vector<std::vector<double>> attacked;

  static RocResidues compute(const RocWorkload& workload, control::Norm norm);
};

struct RocPoint {
  double scale = 1.0;            ///< threshold multiplier
  double false_alarm_rate = 0.0; ///< alarms / benign runs
  double detection_rate = 0.0;   ///< alarms / attacked runs
  /// Mean first-alarm instant over detected attacked runs (detection
  /// latency); 0 when nothing was detected.
  double mean_detection_delay = 0.0;
};

struct RocCurve {
  std::string name;
  std::vector<RocPoint> points;  ///< ordered by scale, descending FAR

  /// Area under the curve via trapezoids on (FAR, detection) after sorting
  /// by FAR; the standard scalar summary (1.0 = perfect detector).
  double auc() const;
};

struct RocOptions {
  /// Scales applied to the threshold vector (log-spaced by default helper).
  std::vector<double> scales;
  control::Norm norm = control::Norm::kInf;
  /// Worker threads for the per-scale fan-out: 1 = serial (default),
  /// 0 = one per hardware thread.  The curve is identical either way.
  std::size_t threads = 1;
};

/// Log-spaced scale grid from `lo` to `hi` (inclusive), `count` >= 2 points.
std::vector<double> log_scales(double lo, double hi, std::size_t count);

/// Evaluates the scaled-threshold detector family on the workload
/// (computes RocResidues under options.norm, then delegates below).
RocCurve evaluate_roc(std::string name, const ThresholdVector& thresholds,
                      const RocWorkload& workload, const RocOptions& options);

/// Same sweep over precomputed residue norms — the two-phase fast path
/// when several detectors (or sweep cells) share one workload.
/// options.norm is ignored; `residues.norm` already fixed it.
RocCurve evaluate_roc(std::string name, const ThresholdVector& thresholds,
                      const RocResidues& residues, const RocOptions& options);

/// Workload recipe: Monte-Carlo knobs (sim::MonteCarloConfig — num_runs is
/// the benign-run count) plus the attack signals to replay.
struct WorkloadSetup : sim::MonteCarloConfig {
  WorkloadSetup() { num_runs = 400; }

  /// Attack signals replayed through the loop for the detection side.
  std::vector<control::Signal> attacks;
  /// Replay the attacks on top of fresh benign noise (the realistic
  /// setting); false replays them noise-free.
  bool noisy_attacks = true;
};

/// Builds a benign/attacked workload from a closed loop: `setup.num_runs`
/// noise-only runs that pass the monitors (others are discarded, mirroring
/// the paper's FAR protocol) and `setup.attacks` replayed through the loop
/// (optionally with the same noise model).
///
/// Candidate draw i (and attacked run j) uses its own RNG substream of
/// `setup.seed`, and draws are accepted in index order, so the workload is
/// bit-identical for every `threads` setting (1 = serial, 0 = hardware).
RocWorkload make_workload(const control::ClosedLoop& loop,
                          const monitor::MonitorSet& monitors,
                          const WorkloadSetup& setup);

/// Norm-only phase 1: simulates make_workload's benign draws and attack
/// replays straight into residual-norm series under `norm`, materializing
/// no trace — the result equals RocResidues::compute(make_workload(...),
/// norm) for an EMPTY monitor set bit-identically (same RNG substreams:
/// benign draw i rides substream(seed, i), attacked run j rides
/// substream(seed, 20·num_runs + j)).  Monitors read measurements, so a
/// non-empty monitor set throws util::InvalidArgument; callers gate on
/// monitors.empty() plus sim::norm_only_enabled() and fall back to
/// make_workload otherwise.
RocResidues make_workload_norms(const control::ClosedLoop& loop,
                                const monitor::MonitorSet& monitors,
                                const WorkloadSetup& setup, control::Norm norm);

/// Positional convenience wrapper over the WorkloadSetup overload.
RocWorkload make_workload(const control::ClosedLoop& loop,
                          const monitor::MonitorSet& monitors,
                          std::size_t benign_runs, std::size_t horizon,
                          const linalg::Vector& noise_bounds,
                          const std::vector<control::Signal>& attacks,
                          std::uint64_t seed, bool noisy_attacks = true,
                          std::size_t threads = 1);

}  // namespace cpsguard::detect
