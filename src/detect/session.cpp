#include "detect/session.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace cpsguard::detect {

using control::Norm;
using util::ByteReader;
using util::ByteWriter;
using util::require;

namespace {
constexpr char kSnapshotMagic[4] = {'C', 'P', 'S', 'S'};
constexpr std::uint32_t kSnapshotVersion = 1;
}  // namespace

// ---- SessionBlueprint ------------------------------------------------------

SessionBlueprint::SessionBlueprint(std::string scenario,
                                   std::vector<std::string> labels,
                                   std::vector<DetectorFactory> factories)
    : scenario_(std::move(scenario)),
      labels_(std::move(labels)),
      factories_(std::move(factories)) {
  require(!factories_.empty(), "SessionBlueprint: needs at least one detector");
  require(labels_.size() == factories_.size(),
          "SessionBlueprint: label / factory arity mismatch");
  norm_slots_.reserve(factories_.size());
  for (const DetectorFactory& factory : factories_) {
    const std::unique_ptr<OnlineDetector> probe = factory();
    require(probe != nullptr, "SessionBlueprint: factory produced null detector");
    // Same first-use ordering as DetectorBank::add, so norm slots agree.
    if (const std::optional<Norm> norm = probe->shared_norm()) {
      const auto it = std::find(norms_.begin(), norms_.end(), *norm);
      norm_slots_.push_back(it - norms_.begin());
      if (it == norms_.end()) norms_.push_back(*norm);
    } else {
      norm_slots_.push_back(-1);
    }
  }
}

bool SessionBlueprint::single_norm() const {
  if (norms_.size() != 1) return false;
  return std::all_of(norm_slots_.begin(), norm_slots_.end(),
                     [](std::ptrdiff_t slot) { return slot == 0; });
}

void SessionBlueprint::set_reference_level(double level) {
  require(level > 0.0 && std::isfinite(level),
          "SessionBlueprint: reference level must be positive and finite");
  reference_level_ = level;
}

// ---- Session ---------------------------------------------------------------

Session::Session(std::shared_ptr<const SessionBlueprint> blueprint)
    : blueprint_(std::move(blueprint)) {
  require(blueprint_ != nullptr, "Session: null blueprint");
  detectors_.reserve(blueprint_->size());
  for (std::size_t i = 0; i < blueprint_->size(); ++i) {
    detectors_.push_back(blueprint_->instantiate(i));
    require(detectors_.back() != nullptr, "Session: factory produced null detector");
    detectors_.back()->reset();
  }
  first_alarms_.assign(detectors_.size(), std::nullopt);
  norm_scratch_.assign(blueprint_->norms().size(), 0.0);
}

SessionVerdict Session::feed(const linalg::Vector& z) {
  const std::vector<Norm>& norms = blueprint_->norms();
  for (std::size_t s = 0; s < norms.size(); ++s)
    norm_scratch_[s] = control::vector_norm(z, norms[s]);
  SessionVerdict verdict;
  verdict.step = step_;
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    if (first_alarms_[i]) continue;  // the bank's stop-at-first-alarm rule
    const std::ptrdiff_t slot = blueprint_->norm_slot(i);
    const bool alarm = slot >= 0
                           ? detectors_[i]->step_norm(
                                 norm_scratch_[static_cast<std::size_t>(slot)])
                           : detectors_[i]->step(z);
    if (alarm) {
      first_alarms_[i] = step_;
      if (i < 64) verdict.new_alarms |= 1ULL << i;
    }
  }
  ++step_;
  return verdict;
}

SessionVerdict Session::feed_norm(double residue_norm) {
  require(blueprint_->single_norm(),
          "Session: feed_norm needs a single-shared-norm blueprint");
  SessionVerdict verdict;
  verdict.step = step_;
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    if (first_alarms_[i]) continue;
    if (detectors_[i]->step_norm(residue_norm)) {
      first_alarms_[i] = step_;
      if (i < 64) verdict.new_alarms |= 1ULL << i;
    }
  }
  ++step_;
  return verdict;
}

std::uint64_t Session::alarm_mask() const {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < first_alarms_.size() && i < 64; ++i)
    if (first_alarms_[i]) mask |= 1ULL << i;
  return mask;
}

void Session::reset() {
  for (auto& det : detectors_) det->reset();
  first_alarms_.assign(detectors_.size(), std::nullopt);
  step_ = 0;
}

std::string Session::snapshot() const {
  ByteWriter payload;
  payload.raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  payload.u32(kSnapshotVersion);
  payload.str(blueprint_->scenario());
  payload.u32(static_cast<std::uint32_t>(detectors_.size()));
  payload.u64(step_);
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    if (first_alarms_[i]) {
      payload.u8(1);
      payload.u64(*first_alarms_[i]);
    } else {
      payload.u8(0);
    }
    ByteWriter state;
    detectors_[i]->save_state(state);
    payload.str(state.take());
  }
  return util::frame_with_digest(payload.take());
}

Session Session::restore(std::shared_ptr<const SessionBlueprint> blueprint,
                         const std::string& snapshot) {
  const std::string payload =
      util::unframe_with_digest(snapshot, "Session::restore");
  ByteReader in(payload);
  char magic[4];
  in.raw(magic, sizeof(magic));
  require(std::equal(magic, magic + 4, kSnapshotMagic),
          "Session::restore: not a session snapshot (bad magic)");
  const std::uint32_t version = in.u32();
  require(version == kSnapshotVersion,
          "Session::restore: unsupported snapshot version " +
              std::to_string(version));
  const std::string scenario = in.str();
  Session session(std::move(blueprint));
  require(scenario == session.blueprint_->scenario(),
          "Session::restore: snapshot is for scenario '" + scenario +
              "', blueprint realizes '" + session.blueprint_->scenario() + "'");
  const std::uint32_t count = in.u32();
  require(count == session.detectors_.size(),
          "Session::restore: detector count mismatch");
  session.step_ = static_cast<std::size_t>(in.u64());
  for (std::size_t i = 0; i < session.detectors_.size(); ++i) {
    if (in.u8() != 0) {
      const std::uint64_t at = in.u64();
      require(at < session.step_, "Session::restore: alarm beyond stream head");
      session.first_alarms_[i] = static_cast<std::size_t>(at);
    }
    const std::string state = in.str();
    ByteReader state_in(state);
    session.detectors_[i]->load_state(state_in);
    state_in.expect_done("Session::restore: detector state");
  }
  in.expect_done("Session::restore");
  return session;
}

std::string Session::snapshot_scenario(const std::string& snapshot) {
  const std::string payload =
      util::unframe_with_digest(snapshot, "Session::snapshot_scenario");
  ByteReader in(payload);
  char magic[4];
  in.raw(magic, sizeof(magic));
  require(std::equal(magic, magic + 4, kSnapshotMagic),
          "Session::snapshot_scenario: not a session snapshot (bad magic)");
  const std::uint32_t version = in.u32();
  require(version == kSnapshotVersion,
          "Session::snapshot_scenario: unsupported snapshot version " +
              std::to_string(version));
  return in.str();
}

}  // namespace cpsguard::detect
