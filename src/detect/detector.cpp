#include "detect/detector.hpp"

#include "linalg/decomp.hpp"
#include "util/status.hpp"

namespace cpsguard::detect {

using control::Norm;
using control::Trace;
using control::vector_norm;
using linalg::Matrix;
using linalg::Vector;
using util::require;

namespace {

// The alarm rule, shared between the trace- and series-based entry points
// so they can never diverge: instant k alarms when the (filled) threshold
// there is set and the residue norm reaches it.
template <typename NormAt>
std::optional<std::size_t> scan_alarm(std::size_t count,
                                      const ThresholdVector& filled,
                                      NormAt&& norm_at) {
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t idx = std::min(k, filled.size() - 1);
    const double th = filled[idx];
    if (th <= 0.0) continue;  // nothing set anywhere before the first entry
    if (norm_at(k) >= th) return k;
  }
  return std::nullopt;
}

}  // namespace

ResidueDetector::ResidueDetector(ThresholdVector thresholds, Norm norm)
    : thresholds_(thresholds.filled()), norm_(norm) {
  require(!thresholds_.empty(), "ResidueDetector: empty threshold vector");
}

std::optional<std::size_t> ResidueDetector::first_alarm(const Trace& trace) const {
  return scan_alarm(trace.steps(), thresholds_, [&](std::size_t k) {
    return vector_norm(trace.z[k], norm_);
  });
}

std::optional<std::size_t> first_alarm_in_series(
    const std::vector<double>& residue_norms, const ThresholdVector& thresholds) {
  if (thresholds.empty()) return std::nullopt;
  return scan_alarm(residue_norms.size(), thresholds.filled(),
                    [&](std::size_t k) { return residue_norms[k]; });
}

WindowedDetector::WindowedDetector(ThresholdVector thresholds, Norm norm,
                                   std::size_t k, std::size_t m)
    : thresholds_(thresholds.filled()), norm_(norm), k_(k), m_(m) {
  require(!thresholds_.empty(), "WindowedDetector: empty threshold vector");
  require(k >= 1 && k <= m, "WindowedDetector: need 1 <= k <= m");
}

std::optional<std::size_t> WindowedDetector::first_alarm(const Trace& trace) const {
  // Ring buffer of the last m exceedance flags; count tracks its sum.
  std::vector<bool> window(m_, false);
  std::size_t count = 0;
  for (std::size_t i = 0; i < trace.steps(); ++i) {
    const std::size_t slot = i % m_;
    if (window[slot]) --count;
    const std::size_t idx = std::min(i, thresholds_.size() - 1);
    const double th = thresholds_[idx];
    const bool exceeded =
        th > 0.0 && control::vector_norm(trace.z[i], norm_) >= th;
    window[slot] = exceeded;
    if (exceeded) ++count;
    if (count >= k_) return i;
  }
  return std::nullopt;
}

Chi2Detector::Chi2Detector(const Matrix& innovation_covariance, double threshold)
    : s_inv_(linalg::inverse(innovation_covariance)), threshold_(threshold) {
  require(threshold > 0.0, "Chi2Detector: threshold must be positive");
}

double Chi2Detector::statistic(const Vector& z) const {
  return z.dot(s_inv_ * z);
}

std::optional<std::size_t> Chi2Detector::first_alarm(const Trace& trace) const {
  for (std::size_t k = 0; k < trace.steps(); ++k) {
    if (statistic(trace.z[k]) > threshold_) return k;
  }
  return std::nullopt;
}

CusumDetector::CusumDetector(double drift, double threshold, Norm norm)
    : drift_(drift), threshold_(threshold), norm_(norm) {
  require(threshold > 0.0, "CusumDetector: threshold must be positive");
  require(drift >= 0.0, "CusumDetector: drift must be non-negative");
}

std::optional<std::size_t> CusumDetector::first_alarm(const Trace& trace) const {
  double g = 0.0;
  for (std::size_t k = 0; k < trace.steps(); ++k) {
    g = std::max(0.0, g + vector_norm(trace.z[k], norm_) - drift_);
    if (g > threshold_) return k;
  }
  return std::nullopt;
}

std::vector<double> CusumDetector::statistic_series(const Trace& trace) const {
  std::vector<double> out;
  out.reserve(trace.steps());
  double g = 0.0;
  for (std::size_t k = 0; k < trace.steps(); ++k) {
    g = std::max(0.0, g + vector_norm(trace.z[k], norm_) - drift_);
    out.push_back(g);
  }
  return out;
}

}  // namespace cpsguard::detect
