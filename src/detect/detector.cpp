#include "detect/detector.hpp"

#include "linalg/decomp.hpp"
#include "util/status.hpp"

namespace cpsguard::detect {

using control::Norm;
using control::Trace;
using control::vector_norm;
using linalg::Matrix;
using linalg::Vector;
using util::require;

ResidueDetector::ResidueDetector(ThresholdVector thresholds, Norm norm)
    : thresholds_(thresholds.filled()), norm_(norm) {
  require(!thresholds_.empty(), "ResidueDetector: empty threshold vector");
}

std::optional<std::size_t> ResidueDetector::first_alarm(const Trace& trace) const {
  for (std::size_t k = 0; k < trace.steps(); ++k)
    if (threshold_alarm_at(thresholds_, k, vector_norm(trace.z[k], norm_)))
      return k;
  return std::nullopt;
}

std::unique_ptr<OnlineDetector> ResidueDetector::make_online() const {
  return std::make_unique<ThresholdOnline>(thresholds_, norm_);
}

std::optional<std::size_t> first_alarm_in_series(
    const std::vector<double>& residue_norms, const ThresholdVector& thresholds) {
  if (thresholds.empty()) return std::nullopt;
  const ThresholdVector filled = thresholds.filled();
  for (std::size_t k = 0; k < residue_norms.size(); ++k)
    if (threshold_alarm_at(filled, k, residue_norms[k])) return k;
  return std::nullopt;
}

WindowedDetector::WindowedDetector(ThresholdVector thresholds, Norm norm,
                                   std::size_t k, std::size_t m)
    : thresholds_(thresholds.filled()), norm_(norm), k_(k), m_(m) {
  require(!thresholds_.empty(), "WindowedDetector: empty threshold vector");
  require(k >= 1 && k <= m, "WindowedDetector: need 1 <= k <= m");
}

std::optional<std::size_t> WindowedDetector::first_alarm(const Trace& trace) const {
  WindowedOnline online(thresholds_, norm_, k_, m_);
  return streaming_first_alarm(online, trace);
}

std::unique_ptr<OnlineDetector> WindowedDetector::make_online() const {
  return std::make_unique<WindowedOnline>(thresholds_, norm_, k_, m_);
}

Chi2Detector::Chi2Detector(const Matrix& innovation_covariance, double threshold)
    : s_inv_(linalg::inverse(innovation_covariance)), threshold_(threshold) {
  require(threshold > 0.0, "Chi2Detector: threshold must be positive");
}

double Chi2Detector::statistic(const Vector& z) const {
  return chi2_statistic(s_inv_, z);
}

std::optional<std::size_t> Chi2Detector::first_alarm(const Trace& trace) const {
  for (std::size_t k = 0; k < trace.steps(); ++k) {
    if (statistic(trace.z[k]) > threshold_) return k;
  }
  return std::nullopt;
}

std::unique_ptr<OnlineDetector> Chi2Detector::make_online() const {
  return std::make_unique<Chi2Online>(Chi2Online::from_inverse(s_inv_, threshold_));
}

CusumDetector::CusumDetector(double drift, double threshold, Norm norm)
    : drift_(drift), threshold_(threshold), norm_(norm) {
  require(threshold > 0.0, "CusumDetector: threshold must be positive");
  require(drift >= 0.0, "CusumDetector: drift must be non-negative");
}

std::optional<std::size_t> CusumDetector::first_alarm(const Trace& trace) const {
  CusumOnline online(drift_, threshold_, norm_);
  return streaming_first_alarm(online, trace);
}

std::vector<double> CusumDetector::statistic_series(const Trace& trace) const {
  std::vector<double> out;
  out.reserve(trace.steps());
  double g = 0.0;
  for (std::size_t k = 0; k < trace.steps(); ++k) {
    g = cusum_update(g, vector_norm(trace.z[k], norm_), drift_);
    out.push_back(g);
  }
  return out;
}

std::unique_ptr<OnlineDetector> CusumDetector::make_online() const {
  return std::make_unique<CusumOnline>(drift_, threshold_, norm_);
}

}  // namespace cpsguard::detect
