// c_emitter.hpp — C99 code generation for synthesized detectors.
//
// The paper's title promises *implementations*: this module turns a
// synthesis result (loop design + threshold vector + monitoring system)
// into a single self-contained C99 translation unit suitable for an ECU
// build: estimator step, residue computation, threshold table lookup,
// range/gradient/relation monitors and the dead-zone counter.  The emitted
// semantics mirror control::KalmanFilter + detect::ResidueDetector +
// monitor::MonitorSet exactly; an integration test compiles the output with
// the system C compiler and cross-checks alarm decisions sample-by-sample
// against the C++ implementation.
//
// Code generation understands the three monitor types shipped with the
// library (range / gradient / relation).  Custom SensorMonitor subclasses
// are rejected with util::InvalidArgument.
#pragma once

#include <string>

#include "control/closed_loop.hpp"
#include "detect/threshold.hpp"
#include "monitor/monitor.hpp"

namespace cpsguard::codegen {

struct CodegenOptions {
  /// Prefix for all emitted identifiers (a valid C identifier).
  std::string symbol_prefix = "cpsguard";
  /// Residue norm compiled into the detector.
  control::Norm norm = control::Norm::kInf;
  /// Emit a small self-test main() guarded by -DCPSGUARD_SELFTEST.
  bool emit_selftest = true;
};

/// Renders the detector module.  The returned string is the full contents
/// of one .c file (with an embedded header section between
/// "/* --- header --- */" markers for projects that want to split it).
std::string emit_detector_c(const control::LoopConfig& loop,
                            const detect::ThresholdVector& thresholds,
                            const monitor::MonitorSet& monitors,
                            const CodegenOptions& options = {});

/// Convenience: writes emit_detector_c() to `path`.
void write_detector_c(const std::string& path, const control::LoopConfig& loop,
                      const detect::ThresholdVector& thresholds,
                      const monitor::MonitorSet& monitors,
                      const CodegenOptions& options = {});

}  // namespace cpsguard::codegen
