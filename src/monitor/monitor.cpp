#include "monitor/monitor.hpp"

#include <cmath>
#include <sstream>

#include "util/status.hpp"

namespace cpsguard::monitor {

using control::Trace;
using linalg::Vector;
using sym::AffineExpr;
using sym::BoolExpr;
using sym::RelOp;
using sym::SymbolicTrace;
using util::require;

namespace {

/// |expr| <= limit as a conjunction of two non-strict literals.
BoolExpr abs_le(const AffineExpr& expr, double limit) {
  return BoolExpr::conj({BoolExpr::lit(expr - limit, RelOp::kLe),
                         BoolExpr::lit(-expr - limit, RelOp::kLe)});
}

}  // namespace

RangeMonitor::RangeMonitor(std::size_t output_index, double limit, std::string label)
    : output_index_(output_index), limit_(limit), label_(std::move(label)) {
  require(limit > 0.0, "RangeMonitor: limit must be positive");
}

bool RangeMonitor::violated(const Trace& trace, std::size_t k) const {
  return std::abs(trace.y[k][output_index_]) > limit_;
}

BoolExpr RangeMonitor::ok_expr(const SymbolicTrace& trace, std::size_t k,
                               double margin) const {
  return abs_le(trace.y[k][output_index_], limit_ * (1.0 - margin));
}

std::string RangeMonitor::describe() const {
  std::ostringstream out;
  out << "range(|y[" << output_index_ << "]| <= " << limit_;
  if (!label_.empty()) out << ", " << label_;
  out << ")";
  return out.str();
}

std::unique_ptr<SensorMonitor> RangeMonitor::clone() const {
  return std::make_unique<RangeMonitor>(*this);
}

GradientMonitor::GradientMonitor(std::size_t output_index, double limit_per_second,
                                 std::string label)
    : output_index_(output_index), limit_(limit_per_second), label_(std::move(label)) {
  require(limit_per_second > 0.0, "GradientMonitor: limit must be positive");
}

bool GradientMonitor::violated(const Trace& trace, std::size_t k) const {
  if (k == 0) return false;
  const double dy = trace.y[k][output_index_] - trace.y[k - 1][output_index_];
  return std::abs(dy) / trace.ts > limit_;
}

BoolExpr GradientMonitor::ok_expr(const SymbolicTrace& trace, std::size_t k,
                                  double margin) const {
  if (k == 0) return BoolExpr::constant(true);
  const AffineExpr dy = trace.y[k][output_index_] - trace.y[k - 1][output_index_];
  return abs_le(dy, limit_ * trace.ts * (1.0 - margin));
}

std::string GradientMonitor::describe() const {
  std::ostringstream out;
  out << "gradient(|dy[" << output_index_ << "]/dt| <= " << limit_;
  if (!label_.empty()) out << ", " << label_;
  out << ")";
  return out.str();
}

std::unique_ptr<SensorMonitor> GradientMonitor::clone() const {
  return std::make_unique<GradientMonitor>(*this);
}

RelationMonitor::RelationMonitor(Vector output_coeffs, double offset, double limit,
                                 std::string label)
    : coeffs_(std::move(output_coeffs)), offset_(offset), limit_(limit),
      label_(std::move(label)) {
  require(limit > 0.0, "RelationMonitor: limit must be positive");
}

bool RelationMonitor::violated(const Trace& trace, std::size_t k) const {
  require(trace.y[k].size() == coeffs_.size(), "RelationMonitor: output dim mismatch");
  double v = offset_;
  for (std::size_t i = 0; i < coeffs_.size(); ++i) v += coeffs_[i] * trace.y[k][i];
  return std::abs(v) > limit_;
}

BoolExpr RelationMonitor::ok_expr(const SymbolicTrace& trace, std::size_t k,
                                  double margin) const {
  require(trace.y[k].size() == coeffs_.size(), "RelationMonitor: output dim mismatch");
  AffineExpr v = AffineExpr::constant(trace.y[k].front().num_vars(), offset_);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] != 0.0) v += coeffs_[i] * trace.y[k][i];
  }
  return abs_le(v, limit_ * (1.0 - margin));
}

std::string RelationMonitor::describe() const {
  std::ostringstream out;
  out << "relation(|" << coeffs_.str() << " . y + " << offset_ << "| <= " << limit_;
  if (!label_.empty()) out << ", " << label_;
  out << ")";
  return out.str();
}

std::unique_ptr<SensorMonitor> RelationMonitor::clone() const {
  return std::make_unique<RelationMonitor>(*this);
}

MonitorSet::MonitorSet(const MonitorSet& other)
    : dead_zone_(other.dead_zone_), combiner_(other.combiner_) {
  monitors_.reserve(other.monitors_.size());
  for (const auto& m : other.monitors_) monitors_.push_back(m->clone());
}

MonitorSet& MonitorSet::operator=(const MonitorSet& other) {
  if (this == &other) return *this;
  MonitorSet copy(other);
  *this = std::move(copy);
  return *this;
}

void MonitorSet::add(std::unique_ptr<SensorMonitor> monitor) {
  require(monitor != nullptr, "MonitorSet::add: null monitor");
  monitors_.push_back(std::move(monitor));
}

void MonitorSet::set_dead_zone(std::size_t samples) {
  require(samples >= 1, "MonitorSet: dead zone must be >= 1 sample");
  dead_zone_ = samples;
}

bool MonitorSet::composite_violation(const Trace& trace, std::size_t k) const {
  if (monitors_.empty()) return false;
  if (combiner_ == ViolationCombiner::kAny) {
    for (const auto& m : monitors_)
      if (m->violated(trace, k)) return true;
    return false;
  }
  for (const auto& m : monitors_)
    if (!m->violated(trace, k)) return false;
  return true;
}

std::optional<std::size_t> MonitorSet::first_alarm(const Trace& trace) const {
  if (monitors_.empty()) return std::nullopt;
  std::size_t run = 0;
  for (std::size_t k = 0; k < trace.steps(); ++k) {
    run = composite_violation(trace, k) ? run + 1 : 0;
    if (run >= dead_zone_) return k;
  }
  return std::nullopt;
}

BoolExpr MonitorSet::stealthy_expr(const SymbolicTrace& trace, double margin) const {
  if (monitors_.empty()) return BoolExpr::constant(true);
  const std::size_t steps = trace.steps();
  if (steps < dead_zone_) return BoolExpr::constant(true);

  // Per-sample "no composite violation" predicates.
  std::vector<BoolExpr> sample_ok;
  sample_ok.reserve(steps);
  for (std::size_t k = 0; k < steps; ++k) {
    std::vector<BoolExpr> oks;
    oks.reserve(monitors_.size());
    for (const auto& m : monitors_) oks.push_back(m->ok_expr(trace, k, margin));
    // kAny combiner: composite ok = every monitor ok; kAll: any monitor ok.
    sample_ok.push_back(combiner_ == ViolationCombiner::kAny
                            ? BoolExpr::conj(std::move(oks))
                            : BoolExpr::disj(std::move(oks)));
  }

  // No alarm <=> every dead-zone window contains a violation-free sample.
  std::vector<BoolExpr> windows;
  windows.reserve(steps - dead_zone_ + 1);
  for (std::size_t start = 0; start + dead_zone_ <= steps; ++start) {
    std::vector<BoolExpr> any_ok(sample_ok.begin() + static_cast<std::ptrdiff_t>(start),
                                 sample_ok.begin() + static_cast<std::ptrdiff_t>(start + dead_zone_));
    windows.push_back(BoolExpr::disj(std::move(any_ok)));
  }
  return BoolExpr::conj(std::move(windows));
}

std::string MonitorSet::describe() const {
  std::ostringstream out;
  out << "MonitorSet(dead_zone=" << dead_zone_ << ", combiner="
      << (combiner_ == ViolationCombiner::kAny ? "any" : "all") << ")";
  for (const auto& m : monitors_) out << "\n  - " << m->describe();
  return out.str();
}

}  // namespace cpsguard::monitor
