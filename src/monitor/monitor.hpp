// monitor.hpp — plausibility monitors on sensor measurements ("mdc").
//
// Section IV of the paper describes an industrial-style monitoring system
// for the VSC: range and gradient checks on each measurement, a relation
// (consistency) check between yaw rate and lateral acceleration, and a dead
// zone — an alarm is raised only when the violation persists for a whole
// dead-zone window.
//
// Every monitor exposes two faces of the same predicate:
//  * violated(trace, k)        — concrete evaluation on a simulation trace;
//  * ok_expr(symbolic, k)      — the NEGATED predicate ("measurement looks
//                                sane at instant k") over affine traces,
//                                which is what the stealthiness encoding
//                                needs (a conjunction of linear literals).
// A test suite cross-checks the two faces against each other.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/trace.hpp"
#include "sym/constraint.hpp"
#include "sym/unroller.hpp"

namespace cpsguard::monitor {

/// Abstract per-sample monitor over measurements.
class SensorMonitor {
 public:
  virtual ~SensorMonitor() = default;

  /// True when the monitor flags instant `k` of a concrete trace.
  virtual bool violated(const control::Trace& trace, std::size_t k) const = 0;

  /// Symbolic "instant k looks sane" predicate (conjunction of linear
  /// literals over the affine trace).  `margin` relatively tightens the
  /// limit (limit * (1 - margin)): attack finders use a small interior
  /// margin so their models replay robustly on the concrete monitors, while
  /// certifiers use margin = 0 (exact paper semantics).
  virtual sym::BoolExpr ok_expr(const sym::SymbolicTrace& trace, std::size_t k,
                                double margin = 0.0) const = 0;

  virtual std::string describe() const = 0;

  /// Deep copy (MonitorSet is copyable for per-experiment variations).
  virtual std::unique_ptr<SensorMonitor> clone() const = 0;
};

/// |y_k[output]| <= limit  (absolute range check).
class RangeMonitor final : public SensorMonitor {
 public:
  RangeMonitor(std::size_t output_index, double limit, std::string label = "");

  bool violated(const control::Trace& trace, std::size_t k) const override;
  sym::BoolExpr ok_expr(const sym::SymbolicTrace& trace, std::size_t k,
                        double margin = 0.0) const override;
  std::string describe() const override;
  std::unique_ptr<SensorMonitor> clone() const override;

  std::size_t output_index() const { return output_index_; }
  double limit() const { return limit_; }

 private:
  std::size_t output_index_;
  double limit_;
  std::string label_;
};

/// |y_k[output] - y_{k-1}[output]| / Ts <= limit  (slew-rate check).
/// The first sample has no predecessor and never violates.
class GradientMonitor final : public SensorMonitor {
 public:
  GradientMonitor(std::size_t output_index, double limit_per_second,
                  std::string label = "");

  bool violated(const control::Trace& trace, std::size_t k) const override;
  sym::BoolExpr ok_expr(const sym::SymbolicTrace& trace, std::size_t k,
                        double margin = 0.0) const override;
  std::string describe() const override;
  std::unique_ptr<SensorMonitor> clone() const override;

  std::size_t output_index() const { return output_index_; }
  double limit_per_second() const { return limit_; }

 private:
  std::size_t output_index_;
  double limit_;
  std::string label_;
};

/// |coeffs . y_k + offset| <= limit — cross-sensor consistency, e.g. the
/// VSC's "measured yaw rate vs yaw rate estimated from lateral acceleration"
/// check (gamma - a_y / v_x within allowedDiff).
class RelationMonitor final : public SensorMonitor {
 public:
  RelationMonitor(linalg::Vector output_coeffs, double offset, double limit,
                  std::string label = "");

  bool violated(const control::Trace& trace, std::size_t k) const override;
  sym::BoolExpr ok_expr(const sym::SymbolicTrace& trace, std::size_t k,
                        double margin = 0.0) const override;
  std::string describe() const override;
  std::unique_ptr<SensorMonitor> clone() const override;

  double limit() const { return limit_; }
  const linalg::Vector& output_coeffs() const { return coeffs_; }
  double offset() const { return offset_; }

 private:
  linalg::Vector coeffs_;
  double offset_;
  double limit_;
  std::string label_;
};

/// How per-monitor violations combine into the composite per-sample
/// violation that feeds the dead-zone counter.
enum class ViolationCombiner {
  kAny,  ///< composite violation when ANY monitor flags the sample
  kAll,  ///< composite violation only when ALL monitors flag the sample
};

/// A set of monitors plus the dead-zone alarm policy.  An alarm fires at
/// instant k when the composite violation held at every instant of the
/// window [k - dead_zone + 1, k].  dead_zone = 1 alarms immediately.
class MonitorSet {
 public:
  MonitorSet() = default;
  MonitorSet(const MonitorSet& other);
  MonitorSet& operator=(const MonitorSet& other);
  MonitorSet(MonitorSet&&) = default;
  MonitorSet& operator=(MonitorSet&&) = default;

  void add(std::unique_ptr<SensorMonitor> monitor);
  void set_dead_zone(std::size_t samples);
  void set_combiner(ViolationCombiner combiner) { combiner_ = combiner; }

  std::size_t size() const { return monitors_.size(); }
  bool empty() const { return monitors_.empty(); }
  std::size_t dead_zone() const { return dead_zone_; }
  const SensorMonitor& at(std::size_t i) const { return *monitors_[i]; }

  /// Composite violation at instant k of a concrete trace.
  bool composite_violation(const control::Trace& trace, std::size_t k) const;

  /// First instant at which the alarm fires, if any.
  std::optional<std::size_t> first_alarm(const control::Trace& trace) const;

  /// True when the trace never raises the alarm.
  bool stealthy(const control::Trace& trace) const { return !first_alarm(trace).has_value(); }

  /// Symbolic "the monitoring system stays silent over the whole horizon":
  /// for every dead-zone window there is at least one violation-free sample.
  /// With kAny, "violation-free" is the conjunction of all monitors' ok
  /// predicates; with kAll it is the disjunction of them.  See
  /// SensorMonitor::ok_expr for the meaning of `margin`.
  sym::BoolExpr stealthy_expr(const sym::SymbolicTrace& trace, double margin = 0.0) const;

  std::string describe() const;

 private:
  std::vector<std::unique_ptr<SensorMonitor>> monitors_;
  std::size_t dead_zone_ = 1;
  ViolationCombiner combiner_ = ViolationCombiner::kAny;
};

}  // namespace cpsguard::monitor
