// session_store.hpp — crash-safe durability for served sessions.
//
// The server's SessionTable is in-memory: a crash loses every live session.
// SessionStore is the durable side — one file per session under a state
// directory, each holding the session's integrity-framed serve snapshot
// (ServedSession::snapshot, the same versioned sha256-framed blob that
// travels on the wire as kSnapshotData).  The server persists on open and
// on a checkpoint cadence, removes files when sessions close or age out,
// and at startup restores everything the directory holds — quarantining
// anything that fails its digest to <dir>/corrupt/, exactly the
// sweep::ResultCache fsck discipline, so a torn write degrades to one lost
// session instead of a failed restart.
//
// Layout:
//   <dir>/<sid>.snap   one framed serve snapshot per live session
//   <dir>/corrupt/     quarantined entries (never restored, kept for triage)
//   <dir>/*.tmp.<pid>  in-flight atomic writes (swept on open)
//
// Writes go through util::write_file_atomic (temp file + rename), so a
// kill -9 at any instant leaves either the previous snapshot or the new
// one, never a torn file — torn payloads only arise from storage faults,
// which the digest catches.  The `serve_checkpoint` fault site injects
// both failure modes (thrown persist, torn payload) for chaos drills.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpsguard::serve {

class SessionStore {
 public:
  /// Opens (creating if needed) the state directory and sweeps stale temp
  /// files from interrupted writes.  Throws util::IoError when the
  /// directory cannot be created or is not writable.
  explicit SessionStore(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string quarantine_dir() const { return dir_ + "/corrupt"; }
  std::string entry_path(std::uint64_t sid) const;

  /// Atomically persists `blob` (an already integrity-framed serve
  /// snapshot) as session `sid`'s entry, replacing any previous one.
  /// Throws util::IoError on failure; the `serve_checkpoint` fault site can
  /// inject a thrown failure or a torn payload here.
  void persist(std::uint64_t sid, const std::string& blob) const;

  /// Removes session `sid`'s entry; false when absent.
  bool remove(std::uint64_t sid) const;

  /// Moves session `sid`'s entry to <dir>/corrupt/ (best effort: a rename
  /// failure falls back to deletion, so a bad entry never survives in the
  /// restore path).
  void quarantine(std::uint64_t sid) const;

  struct Entry {
    std::uint64_t sid = 0;
    std::string blob;  ///< framed serve snapshot, digest already verified
  };

  /// All digest-valid entries in the directory; entries that fail framing
  /// are quarantined and skipped.  Restore-side decode failures are the
  /// caller's to quarantine (the digest cannot vouch for semantic validity
  /// across format versions).
  std::vector<Entry> load_all() const;

  /// Live (non-quarantined, non-temp) entry count.
  std::size_t size() const;

 private:
  std::string dir_;
};

}  // namespace cpsguard::serve
