#include "serve/protocol.hpp"

#include <cmath>
#include <cstring>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace cpsguard::serve {

using util::ByteReader;
using util::ByteWriter;
using util::require;

namespace {

// Body-size guards: a hostile length prefix must never translate into a
// large allocation.  Every element below is at least this many wire bytes,
// so counts are checked against the bytes actually remaining.
constexpr std::size_t kSampleWireBytes = 8;   // one f64
constexpr std::size_t kCanFrameWireBytes = 4 + 1 + 1 + 8;
constexpr std::size_t kBatchEntryHeaderBytes = 8 + 4;  // u64 sid + u32 count

void put_frames(ByteWriter& out, const std::vector<can::CanFrame>& frames) {
  out.u32(static_cast<std::uint32_t>(frames.size()));
  for (const can::CanFrame& f : frames) {
    out.u32(f.id);
    out.u8(f.extended ? 1 : 0);
    out.u8(f.dlc);
    out.raw(f.data.data(), f.data.size());
  }
}

std::vector<can::CanFrame> get_frames(ByteReader& in) {
  const std::uint32_t count = in.u32();
  require(static_cast<std::size_t>(count) * kCanFrameWireBytes <= in.remaining(),
          "serve: kFeedCan frame count exceeds body");
  std::vector<can::CanFrame> frames(count);
  for (can::CanFrame& f : frames) {
    f.id = in.u32();
    const std::uint8_t flags = in.u8();
    require((flags & ~1u) == 0, "serve: kFeedCan unknown frame flags");
    f.extended = (flags & 1u) != 0;
    f.dlc = in.u8();
    in.raw(f.data.data(), f.data.size());
    f.validate();  // id range / dlc — reject hostile frames at the codec edge
  }
  return frames;
}

void put_samples(ByteWriter& out, const std::vector<double>& samples) {
  for (const double v : samples) out.f64(v);
}

std::vector<double> get_samples(ByteReader& in, std::size_t count,
                                const char* what) {
  require(count * kSampleWireBytes <= in.remaining(),
          std::string(what) + ": sample count exceeds body");
  std::vector<double> samples(count);
  for (double& v : samples) {
    v = in.f64();
    require(std::isfinite(v), std::string(what) + ": non-finite sample");
  }
  return samples;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kOpen: return "open";
    case MsgType::kFeedNorm: return "feed_norm";
    case MsgType::kFeedResidual: return "feed_residual";
    case MsgType::kFeedCan: return "feed_can";
    case MsgType::kQuery: return "query";
    case MsgType::kSnapshot: return "snapshot";
    case MsgType::kRestore: return "restore";
    case MsgType::kClose: return "close";
    case MsgType::kPing: return "ping";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kFeedNormBatch: return "feed_norm_batch";
    case MsgType::kOpened: return "opened";
    case MsgType::kVerdicts: return "verdicts";
    case MsgType::kAlarms: return "alarms";
    case MsgType::kSnapshotData: return "snapshot_data";
    case MsgType::kRestored: return "restored";
    case MsgType::kClosed: return "closed";
    case MsgType::kPong: return "pong";
    case MsgType::kVerdictsBatch: return "verdicts_batch";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

std::string encode_frame(const Message& msg) {
  ByteWriter body;
  body.u8(static_cast<std::uint8_t>(msg.type));
  switch (msg.type) {
    case MsgType::kOpen:
      body.u8(msg.mode);
      body.str(msg.scenario);
      break;
    case MsgType::kFeedNorm:
      body.u64(msg.sid);
      body.u32(static_cast<std::uint32_t>(msg.samples.size()));
      put_samples(body, msg.samples);
      break;
    case MsgType::kFeedNormBatch:
      body.u32(static_cast<std::uint32_t>(msg.entries.size()));
      for (const BatchEntry& entry : msg.entries) {
        body.u64(entry.sid);
        body.u32(static_cast<std::uint32_t>(entry.samples.size()));
        put_samples(body, entry.samples);
      }
      break;
    case MsgType::kVerdictsBatch:
      body.u32(static_cast<std::uint32_t>(msg.entries.size()));
      for (const BatchEntry& entry : msg.entries) {
        body.u64(entry.sid);
        body.u32(static_cast<std::uint32_t>(entry.masks.size()));
        for (const std::uint64_t mask : entry.masks) body.u64(mask);
      }
      break;
    case MsgType::kFeedResidual:
      require(msg.dim > 0 && msg.samples.size() % msg.dim == 0,
              "serve: kFeedResidual samples not a multiple of dim");
      body.u64(msg.sid);
      body.u32(static_cast<std::uint32_t>(msg.samples.size() / msg.dim));
      body.u32(msg.dim);
      put_samples(body, msg.samples);
      break;
    case MsgType::kFeedCan:
      body.u64(msg.sid);
      put_frames(body, msg.frames);
      break;
    case MsgType::kQuery:
    case MsgType::kSnapshot:
    case MsgType::kClose:
    case MsgType::kClosed:
      body.u64(msg.sid);
      break;
    case MsgType::kRestore:
    case MsgType::kSnapshotData:
    case MsgType::kError:
      body.str(msg.blob);
      break;
    case MsgType::kPing:
    case MsgType::kShutdown:
    case MsgType::kPong:
      break;
    case MsgType::kOpened:
    case MsgType::kRestored:
      body.u64(msg.sid);
      body.u32(msg.n_detectors);
      break;
    case MsgType::kVerdicts:
      body.u64(msg.sid);
      body.u32(static_cast<std::uint32_t>(msg.masks.size()));
      for (const std::uint64_t mask : msg.masks) body.u64(mask);
      break;
    case MsgType::kAlarms:
      body.u64(msg.sid);
      body.u64(msg.steps_fed);
      body.u32(static_cast<std::uint32_t>(msg.first_alarms.size()));
      for (const auto& alarm : msg.first_alarms) {
        body.u8(alarm.has_value() ? 1 : 0);
        if (alarm) body.u64(*alarm);
      }
      break;
  }
  const std::string encoded = body.take();
  require(encoded.size() <= kMaxFrameBytes, "serve: frame exceeds size cap");
  ByteWriter framed;
  framed.u32(static_cast<std::uint32_t>(encoded.size()));
  framed.raw(encoded.data(), encoded.size());
  return framed.take();
}

Message decode_body(const std::string& body) {
  require(body.size() <= kMaxFrameBytes, "serve: frame exceeds size cap");
  ByteReader in(body);
  Message msg;
  const std::uint8_t raw_type = in.u8();
  msg.type = static_cast<MsgType>(raw_type);
  switch (msg.type) {
    case MsgType::kOpen:
      msg.mode = in.u8();
      require(msg.mode <= static_cast<std::uint8_t>(FeedMode::kCan),
              "serve: kOpen unknown feed mode");
      msg.scenario = in.str();
      require(!msg.scenario.empty(), "serve: kOpen empty scenario name");
      break;
    case MsgType::kFeedNorm:
      msg.sid = in.u64();
      msg.samples = get_samples(in, in.u32(), "serve: kFeedNorm");
      break;
    case MsgType::kFeedNormBatch: {
      const std::uint32_t n_entries = in.u32();
      // Every entry costs at least its sid + count header on the wire, so
      // a hostile n_entries is rejected before any allocation.
      require(static_cast<std::size_t>(n_entries) * kBatchEntryHeaderBytes <=
                  in.remaining(),
              "serve: kFeedNormBatch entry count exceeds body");
      msg.entries.resize(n_entries);
      for (BatchEntry& entry : msg.entries) {
        entry.sid = in.u64();
        entry.samples = get_samples(in, in.u32(), "serve: kFeedNormBatch");
      }
      break;
    }
    case MsgType::kVerdictsBatch: {
      const std::uint32_t n_entries = in.u32();
      require(static_cast<std::size_t>(n_entries) * kBatchEntryHeaderBytes <=
                  in.remaining(),
              "serve: kVerdictsBatch entry count exceeds body");
      msg.entries.resize(n_entries);
      for (BatchEntry& entry : msg.entries) {
        entry.sid = in.u64();
        const std::uint32_t count = in.u32();
        require(static_cast<std::size_t>(count) * 8 <= in.remaining(),
                "serve: kVerdictsBatch mask count exceeds body");
        entry.masks.resize(count);
        for (std::uint64_t& mask : entry.masks) mask = in.u64();
      }
      break;
    }
    case MsgType::kFeedResidual: {
      msg.sid = in.u64();
      const std::uint32_t count = in.u32();
      msg.dim = in.u32();
      require(msg.dim > 0, "serve: kFeedResidual zero residual dimension");
      require(count <= in.remaining() / (kSampleWireBytes * msg.dim),
              "serve: kFeedResidual sample count exceeds body");
      msg.samples = get_samples(
          in, static_cast<std::size_t>(count) * msg.dim, "serve: kFeedResidual");
      break;
    }
    case MsgType::kFeedCan:
      msg.sid = in.u64();
      msg.frames = get_frames(in);
      break;
    case MsgType::kQuery:
    case MsgType::kSnapshot:
    case MsgType::kClose:
    case MsgType::kClosed:
      msg.sid = in.u64();
      break;
    case MsgType::kRestore:
    case MsgType::kSnapshotData:
    case MsgType::kError:
      msg.blob = in.str();
      break;
    case MsgType::kPing:
    case MsgType::kShutdown:
    case MsgType::kPong:
      break;
    case MsgType::kOpened:
    case MsgType::kRestored:
      msg.sid = in.u64();
      msg.n_detectors = in.u32();
      break;
    case MsgType::kVerdicts: {
      msg.sid = in.u64();
      const std::uint32_t count = in.u32();
      require(static_cast<std::size_t>(count) * 8 <= in.remaining(),
              "serve: kVerdicts mask count exceeds body");
      msg.masks.resize(count);
      for (std::uint64_t& mask : msg.masks) mask = in.u64();
      break;
    }
    case MsgType::kAlarms: {
      msg.sid = in.u64();
      msg.steps_fed = in.u64();
      const std::uint32_t count = in.u32();
      require(count <= in.remaining(), "serve: kAlarms count exceeds body");
      msg.first_alarms.resize(count);
      for (auto& alarm : msg.first_alarms)
        if (in.u8() != 0) alarm = in.u64();
      break;
    }
    default:
      throw util::InvalidArgument("serve: unknown message type " +
                                  std::to_string(raw_type));
  }
  in.expect_done(msg_type_name(msg.type));
  return msg;
}

void FrameReader::append(const char* data, std::size_t len) {
  buffer_.append(data, len);
}

std::optional<std::string> FrameReader::next() {
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  std::uint32_t length = 0;
  std::memcpy(&length, buffer_.data() + consumed_, 4);
  require(length <= kMaxFrameBytes,
          "serve: peer announced frame beyond size cap");
  require(length >= 1, "serve: empty frame (missing type byte)");
  if (avail - 4 < length) return std::nullopt;
  std::string body = buffer_.substr(consumed_ + 4, length);
  consumed_ += 4 + static_cast<std::size_t>(length);
  // Compact once the dead prefix dominates, amortizing the copy.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return body;
}

}  // namespace cpsguard::serve
