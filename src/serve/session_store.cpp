#include "serve/session_store.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "util/bytes.hpp"
#include "util/csv.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"

namespace cpsguard::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kEntrySuffix = ".snap";

bool is_temp_file(const fs::path& path) {
  // write_file_atomic temp names: <target>.tmp.<pid>
  return path.filename().string().find(".tmp.") != std::string::npos;
}

/// Session id of an entry file, or 0 (never a valid sid) when the name is
/// not <digits>.snap — foreign files are left alone, not restored.
std::uint64_t sid_of(const fs::path& path) {
  const std::string name = path.filename().string();
  if (name.size() <= std::char_traits<char>::length(kEntrySuffix)) return 0;
  const std::size_t stem_len = name.size() - 5;
  if (name.compare(stem_len, 5, kEntrySuffix) != 0) return 0;
  std::uint64_t sid = 0;
  for (std::size_t i = 0; i < stem_len; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return 0;
    sid = sid * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return sid;
}

}  // namespace

SessionStore::SessionStore(std::string dir) : dir_(std::move(dir)) {
  util::require(!dir_.empty(), "SessionStore: empty state directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw util::IoError("SessionStore: cannot create state directory " + dir_);
  // Sweep temps from writes a crash interrupted: the rename never happened,
  // so the previous entry (if any) is still the authoritative snapshot.
  std::size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || !is_temp_file(entry.path())) continue;
    std::error_code rm_ec;
    if (fs::remove(entry.path(), rm_ec)) ++removed;
  }
  if (removed != 0)
    CPSG_INFO("serve") << "state dir " << dir_ << ": removed " << removed
                       << " interrupted checkpoint temp(s)";
}

std::string SessionStore::entry_path(std::uint64_t sid) const {
  return dir_ + "/" + std::to_string(sid) + kEntrySuffix;
}

void SessionStore::persist(std::uint64_t sid, const std::string& blob) const {
  util::fault::maybe_throw("serve_checkpoint", entry_path(sid));
  std::string payload = blob;
  util::fault::maybe_corrupt("serve_checkpoint", payload);
  util::write_file_atomic(entry_path(sid), payload);
}

bool SessionStore::remove(std::uint64_t sid) const {
  std::error_code ec;
  return fs::remove(entry_path(sid), ec);
}

void SessionStore::quarantine(std::uint64_t sid) const {
  const std::string path = entry_path(sid);
  std::error_code ec;
  fs::create_directories(quarantine_dir(), ec);
  const std::string target =
      quarantine_dir() + "/" + fs::path(path).filename().string();
  fs::rename(path, target, ec);
  if (ec) fs::remove(path, ec);  // cross-device or exotic failure: drop it
  CPSG_WARN("serve") << "quarantined corrupt session snapshot " << path;
}

std::vector<SessionStore::Entry> SessionStore::load_all() const {
  std::vector<Entry> entries;
  std::error_code ec;
  for (const auto& file : fs::directory_iterator(dir_, ec)) {
    if (!file.is_regular_file() || is_temp_file(file.path())) continue;
    const std::uint64_t sid = sid_of(file.path());
    if (sid == 0) continue;
    std::string raw;
    {
      std::ifstream in(file.path(), std::ios::binary);
      if (in)
        raw.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
      if (!in || in.bad()) {
        quarantine(sid);
        continue;
      }
    }
    try {
      util::unframe_with_digest(raw, "serve snapshot");
    } catch (const std::exception&) {
      quarantine(sid);
      continue;
    }
    entries.push_back(Entry{sid, std::move(raw)});
  }
  // Directory iteration order is filesystem-dependent; sort so restores
  // (and the serial high-water marks they imply) are reproducible.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.sid < b.sid; });
  return entries;
}

std::size_t SessionStore::size() const {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& file : fs::directory_iterator(dir_, ec))
    if (file.is_regular_file() && !is_temp_file(file.path()) &&
        sid_of(file.path()) != 0)
      ++count;
  return count;
}

}  // namespace cpsguard::serve
