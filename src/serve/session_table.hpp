// session_table.hpp — the server's sharded registry of live sessions.
//
// One detection service multiplexes tens of thousands of concurrently-fed
// sessions; the table is the only shared mutable structure, so it is lock-
// striped: sessions hash to one of `shards` independently-locked shards
// (the shard index lives in the low bits of the session id, so a session's
// shard never has to be computed twice).  Capacity is bounded per shard —
// inserting into a full shard evicts its least-recently-used session — and
// an optional TTL clock (tick(), driven by the server's idle loop) expires
// sessions no feed has touched for `ttl_ticks` ticks.  Both bounds exist
// so a service pointed at by misbehaving clients degrades by shedding the
// stalest state instead of growing without limit.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "detect/session.hpp"
#include "serve/ingest.hpp"
#include "serve/protocol.hpp"

namespace cpsguard::serve {

/// One served session: the detector state plus its feed mode and (for CAN
/// sessions) the server-side ingest front end.
struct ServedSession {
  detect::Session session;
  FeedMode mode = FeedMode::kNorm;
  std::unique_ptr<CanIngest> ingest;  // CAN mode only

  /// Integrity-framed serve snapshot: feed mode + session snapshot +
  /// ingest state, the payload of kSnapshotData.
  std::string snapshot() const;
};

/// Decoded serve snapshot (the inverse of ServedSession::snapshot): the
/// feed mode, the detect::Session snapshot and (CAN mode) the ingest state.
struct ServeSnapshot {
  FeedMode mode = FeedMode::kNorm;
  std::string session;
  std::string ingest_state;
};

/// Unframes and splits a kSnapshotData blob.  Throws util::InvalidArgument
/// on corruption (digest mismatch, unknown mode, trailing bytes).
ServeSnapshot parse_serve_snapshot(const std::string& blob);

class SessionTable {
 public:
  struct Options {
    std::size_t shards = 8;          ///< rounded up to a power of two
    std::size_t max_sessions = 65536;  ///< global cap, split across shards
    std::uint64_t ttl_ticks = 0;     ///< 0 = never expire
  };

  SessionTable();  // default Options
  explicit SessionTable(Options options);

  /// Stores a session, evicting the shard's LRU entry when full.
  /// Returns the new session id (never 0; ids are not reused).
  std::uint64_t insert(ServedSession session);

  /// Runs `fn(ServedSession&)` under the owning shard's lock, refreshing
  /// the entry's LRU position and TTL stamp.  Returns false (without
  /// calling fn) when the id is unknown — closed, evicted or expired.
  template <class Fn>
  bool with(std::uint64_t sid, Fn&& fn) {
    Shard& shard = shard_of(sid);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(sid);
    if (it == shard.entries.end()) return false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    it->second.last_tick = now_.load(std::memory_order_relaxed);
    fn(it->second.session);
    return true;
  }

  /// Runs `fn(const ServedSession&)` under the owning shard's lock WITHOUT
  /// refreshing the LRU position or TTL stamp — the checkpoint scan's
  /// accessor, so persisting a session does not keep it artificially live.
  /// Returns false (without calling fn) when the id is unknown.
  template <class Fn>
  bool peek(std::uint64_t sid, Fn&& fn) {
    Shard& shard = shard_of(sid);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(sid);
    if (it == shard.entries.end()) return false;
    fn(it->second.session);
    return true;
  }

  /// Re-inserts a session under a fixed id (a restore from the state dir).
  /// The id routes to its original shard via its low bits; the shard's
  /// serial counter is bumped past it so future insert()s never collide.
  /// Requires the same shard count the id was minted under and an unused
  /// id; evicts the shard's LRU entry when full, like insert().
  void insert_with_sid(std::uint64_t sid, ServedSession session);

  /// All live session ids (snapshot; per-shard locks taken in turn).
  std::vector<std::uint64_t> ids() const;

  /// When enabled, every removed session — LRU eviction, TTL expiry and
  /// erase() — is recorded for drain_reaped(), so a durability layer can
  /// delete the corresponding state files at its own cadence.
  void track_removals(bool enabled) { track_removals_ = enabled; }

  /// Returns and clears the ids reaped since the last drain.
  std::vector<std::uint64_t> drain_reaped();

  /// Removes a session; false when unknown.
  bool erase(std::uint64_t sid);

  /// Advances the TTL clock one tick and expires overdue sessions across
  /// all shards.  Returns the number expired.
  std::size_t tick();

  std::size_t size() const;
  std::uint64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }
  std::uint64_t expired() const { return expired_.load(std::memory_order_relaxed); }

  /// Which lock stripe owns `sid` (its low bits).  Work addressed to
  /// distinct shard indices touches distinct mutexes, so a dispatcher may
  /// run it concurrently without further coordination.
  std::size_t shard_index(std::uint64_t sid) const {
    return sid & (shards_.size() - 1);
  }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    ServedSession session;
    std::list<std::uint64_t>::iterator lru_pos;
    std::uint64_t last_tick = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> entries;
    std::list<std::uint64_t> lru;  // front = most recently used
    std::uint64_t next_serial = 1;
  };

  Shard& shard_of(std::uint64_t sid) {
    return *shards_[sid & (shards_.size() - 1)];
  }

  void record_reaped(std::uint64_t sid);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_bits_ = 0;
  std::size_t per_shard_cap_ = 0;
  std::uint64_t ttl_ticks_ = 0;
  std::atomic<std::uint64_t> now_{0};
  std::atomic<std::uint64_t> next_shard_{0};  // round-robin insert target
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<bool> track_removals_{false};
  std::mutex reaped_mutex_;
  std::vector<std::uint64_t> reaped_;
};

}  // namespace cpsguard::serve
