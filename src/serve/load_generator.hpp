// load_generator.hpp — deterministic synthetic load for the serve stack.
//
// Every session gets its own util::Rng substream of (seed, session index),
// so the stream a session receives is a pure function of (scenario, seed,
// index, instant) — the server-side verdicts can be re-derived offline
// byte-for-byte by replaying the same stream through a DetectorBank, which
// is exactly what the smoke gate does.  Samples are uniform residual norms
// in [0, amplitude x reference_level): spanning the alarm boundary, so a
// realistic fraction of sessions actually alarms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "detect/session.hpp"
#include "serve/session_table.hpp"

namespace cpsguard::serve {

struct LoadOptions {
  std::size_t sessions = 64;
  std::size_t samples = 1000;  ///< per session
  std::size_t chunk = 64;      ///< samples per feed call
  std::uint64_t seed = 42;
  double amplitude = 1.25;     ///< peak, in units of blueprint reference level
};

struct LoadStats {
  std::size_t sessions = 0;
  std::size_t samples_total = 0;
  double seconds = 0.0;
  double p50_feed_micros = 0.0;  ///< per-sample feed latency percentiles
  double p99_feed_micros = 0.0;
  std::size_t sessions_alarmed = 0;

  double aggregate_rate() const {
    return seconds > 0.0 ? static_cast<double>(samples_total) / seconds : 0.0;
  }
};

/// The full residual-norm stream of one generated session.
std::vector<double> session_stream(const detect::SessionBlueprint& blueprint,
                                   const LoadOptions& options,
                                   std::size_t session_index,
                                   std::size_t count);

/// Replays `stream` through a fresh offline DetectorBank built from the
/// blueprint (evaluate_norms — the batch reference path) and returns the
/// per-detector first alarms.  The smoke gate compares these against the
/// served session's kAlarms reply.
std::vector<std::optional<std::size_t>> offline_first_alarms(
    const detect::SessionBlueprint& blueprint, const std::vector<double>& stream);

/// In-process soak: opens `options.sessions` sessions in `table` against
/// `blueprint` and feeds them round-robin, chunk by chunk, measuring feed
/// latency.  Exercises the exact server data path minus the socket.
LoadStats run_local_load(SessionTable& table,
                         std::shared_ptr<const detect::SessionBlueprint> blueprint,
                         const LoadOptions& options);

}  // namespace cpsguard::serve
