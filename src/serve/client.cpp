#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/status.hpp"

namespace cpsguard::serve {

using util::require;

Client Client::connect_unix(const std::string& path) {
  require(path.size() < sizeof(sockaddr_un{}.sun_path),
          "serve client: unix socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, "serve client: socket(AF_UNIX) failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw util::InvalidArgument("serve client: cannot connect to " + path);
  }
  return Client(fd);
}

Client Client::connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, "serve client: socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw util::InvalidArgument("serve client: cannot connect to port " +
                                std::to_string(port));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Message Client::call(const Message& request) {
  require(fd_ >= 0, "serve client: connection is closed");
  const std::string frame = encode_frame(request);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    require(n > 0 || errno == EINTR, "serve client: send failed");
    if (n > 0) sent += static_cast<std::size_t>(n);
  }
  while (true) {
    if (const std::optional<std::string> body = reader_.next())
      return decode_body(*body);
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    require(n > 0, "serve client: connection closed mid-reply");
    reader_.append(buf, static_cast<std::size_t>(n));
  }
}

Message Client::expect(const Message& request, MsgType want) {
  Message reply = call(request);
  if (reply.type == MsgType::kError)
    throw util::InvalidArgument("serve client: server error: " + reply.blob);
  require(reply.type == want,
          std::string("serve client: expected ") + msg_type_name(want) +
              ", got " + msg_type_name(reply.type));
  return reply;
}

std::uint64_t Client::open(FeedMode mode, const std::string& scenario) {
  Message req;
  req.type = MsgType::kOpen;
  req.mode = static_cast<std::uint8_t>(mode);
  req.scenario = scenario;
  return expect(req, MsgType::kOpened).sid;
}

std::vector<std::uint64_t> Client::feed_norms(std::uint64_t sid,
                                              const std::vector<double>& norms) {
  Message req;
  req.type = MsgType::kFeedNorm;
  req.sid = sid;
  req.samples = norms;
  return expect(req, MsgType::kVerdicts).masks;
}

std::vector<BatchEntry> Client::feed_norm_batch(
    std::vector<BatchEntry> entries) {
  Message req;
  req.type = MsgType::kFeedNormBatch;
  req.entries = std::move(entries);
  return expect(req, MsgType::kVerdictsBatch).entries;
}

Message Client::query(std::uint64_t sid) {
  Message req;
  req.type = MsgType::kQuery;
  req.sid = sid;
  return expect(req, MsgType::kAlarms);
}

std::string Client::snapshot(std::uint64_t sid) {
  Message req;
  req.type = MsgType::kSnapshot;
  req.sid = sid;
  return expect(req, MsgType::kSnapshotData).blob;
}

std::uint64_t Client::restore(const std::string& blob) {
  Message req;
  req.type = MsgType::kRestore;
  req.blob = blob;
  return expect(req, MsgType::kRestored).sid;
}

void Client::close_session(std::uint64_t sid) {
  Message req;
  req.type = MsgType::kClose;
  req.sid = sid;
  expect(req, MsgType::kClosed);
}

void Client::ping() {
  Message req;
  req.type = MsgType::kPing;
  expect(req, MsgType::kPong);
}

void Client::shutdown_server() {
  Message req;
  req.type = MsgType::kShutdown;
  expect(req, MsgType::kPong);
}

}  // namespace cpsguard::serve
