#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/status.hpp"

namespace cpsguard::serve {

using util::require;

namespace {

/// Raw dial helpers: a connected fd, or -1 with `err` describing why.
int dial_unix(const std::string& path, std::string& err) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    err = "unix socket path too long";
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    err = "socket(AF_UNIX) failed";
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    err = "cannot connect to " + path;
    return -1;
  }
  return fd;
}

int dial_tcp(std::uint16_t port, std::string& err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    err = "socket(AF_INET) failed";
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    err = "cannot connect to port " + std::to_string(port);
    return -1;
  }
  return fd;
}

/// Requests a retransmit cannot double-apply: they read state (or nothing),
/// so reconnect-and-resend is safe.  Everything else — feeds above all —
/// surfaces the transport failure for the caller to re-synchronize.
bool retransmit_safe(MsgType type) {
  switch (type) {
    case MsgType::kPing:
    case MsgType::kQuery:
    case MsgType::kSnapshot:
      return true;
    default:
      return false;
  }
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  std::string err;
  const int fd = dial_unix(path, err);
  if (fd < 0) throw util::InvalidArgument("serve client: " + err);
  return Client(fd);
}

Client Client::connect_tcp(std::uint16_t port) {
  std::string err;
  const int fd = dial_tcp(port, err);
  if (fd < 0) throw util::InvalidArgument("serve client: " + err);
  return Client(fd);
}

Client Client::connect(const Endpoint& endpoint, util::RetryPolicy reconnect) {
  require(!endpoint.unix_path.empty() || endpoint.tcp_port != 0,
          "serve client: endpoint needs a unix path or a TCP port");
  Client client;
  client.endpoint_ = endpoint;
  client.policy_ = reconnect;
  client.ensure_connected();
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      reader_(std::move(other.reader_)),
      endpoint_(std::move(other.endpoint_)),
      policy_(other.policy_),
      dials_(other.dials_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
    endpoint_ = std::move(other.endpoint_);
    policy_ = other.policy_;
    dials_ = other.dials_;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::ensure_connected() {
  if (fd_ >= 0) return;
  require(endpoint_.has_value(), "serve client: connection is closed");
  std::string err;
  for (std::size_t attempt = 1;; ++attempt) {
    const int fd = !endpoint_->unix_path.empty()
                       ? dial_unix(endpoint_->unix_path, err)
                       : dial_tcp(endpoint_->tcp_port, err);
    if (fd >= 0) {
      fd_ = fd;
      reader_ = FrameReader();  // a new byte stream: no stale frame state
      ++dials_;
      return;
    }
    if (!policy_.allows(attempt + 1))
      throw util::IoError("serve client: reconnect failed after " +
                          std::to_string(attempt) + " attempt(s): " + err);
    util::sleep_for_ms(policy_.delay_ms(attempt, /*salt=*/dials_));
  }
}

void Client::fail_transport(const std::string& what) {
  ::close(fd_);
  fd_ = -1;
  reader_ = FrameReader();
  throw util::IoError("serve client: " + what);
}

Message Client::call_once(const Message& request) {
  const std::string frame = encode_frame(request);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // interrupted: just retry
    if (n <= 0) fail_transport("send failed");
    sent += static_cast<std::size_t>(n);
  }
  while (true) {
    if (const std::optional<std::string> body = reader_.next())
      return decode_body(*body);
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) fail_transport("connection closed mid-reply");
    reader_.append(buf, static_cast<std::size_t>(n));
  }
}

Message Client::call(const Message& request) {
  ensure_connected();
  try {
    return call_once(request);
  } catch (const util::IoError&) {
    if (!endpoint_.has_value() || !retransmit_safe(request.type)) throw;
  }
  // Side-effect-free request on a redialable client: reconnect (under the
  // policy's backoff) and retransmit once.
  ensure_connected();
  return call_once(request);
}

Message Client::expect(const Message& request, MsgType want) {
  Message reply = call(request);
  if (reply.type == MsgType::kError)
    throw util::InvalidArgument("serve client: server error: " + reply.blob);
  require(reply.type == want,
          std::string("serve client: expected ") + msg_type_name(want) +
              ", got " + msg_type_name(reply.type));
  return reply;
}

std::uint64_t Client::open(FeedMode mode, const std::string& scenario) {
  Message req;
  req.type = MsgType::kOpen;
  req.mode = static_cast<std::uint8_t>(mode);
  req.scenario = scenario;
  return expect(req, MsgType::kOpened).sid;
}

std::vector<std::uint64_t> Client::feed_norms(std::uint64_t sid,
                                              const std::vector<double>& norms) {
  Message req;
  req.type = MsgType::kFeedNorm;
  req.sid = sid;
  req.samples = norms;
  return expect(req, MsgType::kVerdicts).masks;
}

std::vector<BatchEntry> Client::feed_norm_batch(
    std::vector<BatchEntry> entries) {
  Message req;
  req.type = MsgType::kFeedNormBatch;
  req.entries = std::move(entries);
  return expect(req, MsgType::kVerdictsBatch).entries;
}

Message Client::query(std::uint64_t sid) {
  Message req;
  req.type = MsgType::kQuery;
  req.sid = sid;
  return expect(req, MsgType::kAlarms);
}

std::string Client::snapshot(std::uint64_t sid) {
  Message req;
  req.type = MsgType::kSnapshot;
  req.sid = sid;
  return expect(req, MsgType::kSnapshotData).blob;
}

std::uint64_t Client::restore(const std::string& blob) {
  Message req;
  req.type = MsgType::kRestore;
  req.blob = blob;
  return expect(req, MsgType::kRestored).sid;
}

void Client::close_session(std::uint64_t sid) {
  Message req;
  req.type = MsgType::kClose;
  req.sid = sid;
  expect(req, MsgType::kClosed);
}

void Client::ping() {
  Message req;
  req.type = MsgType::kPing;
  expect(req, MsgType::kPong);
}

void Client::shutdown_server() {
  Message req;
  req.type = MsgType::kShutdown;
  expect(req, MsgType::kPong);
}

}  // namespace cpsguard::serve
