#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/service.hpp"
#include "serve/protocol.hpp"
#include "sim/scheduler.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"

namespace cpsguard::serve {

using util::require;

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  require(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
          "serve: fcntl(O_NONBLOCK) failed");
}

int make_unix_listener(const std::string& path) {
  require(path.size() < sizeof(sockaddr_un{}.sun_path),
          "serve: unix socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, "serve: socket(AF_UNIX) failed");
  ::unlink(path.c_str());  // stale socket from a killed server
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    throw util::InvalidArgument("serve: cannot bind unix socket " + path);
  }
  set_nonblocking(fd);
  return fd;
}

int make_tcp_listener(std::uint16_t port, std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, "serve: socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    throw util::InvalidArgument("serve: cannot bind loopback TCP port " +
                                std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port = ntohs(bound.sin_port);
  set_nonblocking(fd);
  return fd;
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  FrameReader reader;
  std::string outbuf;
  std::size_t outoff = 0;
  std::uint64_t last_activity_tick = 0;

  /// Unflushed reply bytes — the backpressure quantity.
  std::size_t pending() const { return outbuf.size() - outoff; }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), table_(options_.table) {
  require(!options_.unix_path.empty() || options_.tcp,
          "serve: enable a unix socket or TCP listener");
  if (!options_.unix_path.empty())
    unix_listener_ = make_unix_listener(options_.unix_path);
  if (options_.tcp)
    tcp_listener_ = make_tcp_listener(options_.tcp_port, bound_tcp_port_);
  require(::pipe(wake_pipe_) == 0, "serve: pipe() failed");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
  // Held so accept() can still shed load when the fd table fills: closing
  // this frees one descriptor to accept-and-close the newcomer with.
  reserve_fd_ = ::open("/dev/null", O_RDONLY);
  if (!options_.state_dir.empty()) {
    store_ = std::make_unique<SessionStore>(options_.state_dir);
    table_.track_removals(true);  // reaped sessions drop their state files
    restore_from_store();
  }
}

Server::~Server() {
  for (auto& [fd, conn] : connections_) ::close(fd);
  if (unix_listener_ >= 0) ::close(unix_listener_);
  if (tcp_listener_ >= 0) ::close(tcp_listener_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (reserve_fd_ >= 0) ::close(reserve_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = counters_.accepted.load(std::memory_order_relaxed);
  s.shed_overload = counters_.shed_overload.load(std::memory_order_relaxed);
  s.shed_no_fds = counters_.shed_no_fds.load(std::memory_order_relaxed);
  s.dropped_backpressure =
      counters_.dropped_backpressure.load(std::memory_order_relaxed);
  s.idle_closed = counters_.idle_closed.load(std::memory_order_relaxed);
  s.faulted_io = counters_.faulted_io.load(std::memory_order_relaxed);
  s.checkpoints = counters_.checkpoints.load(std::memory_order_relaxed);
  s.checkpoint_failures =
      counters_.checkpoint_failures.load(std::memory_order_relaxed);
  s.restored = counters_.restored.load(std::memory_order_relaxed);
  s.quarantined = counters_.quarantined.load(std::memory_order_relaxed);
  return s;
}

void Server::restore_from_store() {
  const std::size_t present = store_->size();
  const std::vector<SessionStore::Entry> entries = store_->load_all();
  // load_all already quarantined entries that failed their digest.
  counters_.quarantined.fetch_add(present - entries.size(),
                                  std::memory_order_relaxed);
  for (const SessionStore::Entry& entry : entries) {
    try {
      ServedSession served = restore_session(entry.blob);
      const std::uint64_t steps = served.session.steps_fed();
      table_.insert_with_sid(entry.sid, std::move(served));
      persisted_steps_[entry.sid] = steps;
      counters_.restored.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& err) {
      // Digest-valid but undecodable (format drift, unknown scenario):
      // same quarantine discipline, one lost session, not a failed boot.
      CPSG_WARN("serve") << "cannot restore session " << entry.sid << ": "
                         << err.what();
      store_->quarantine(entry.sid);
      counters_.quarantined.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!entries.empty())
    CPSG_INFO("serve") << "restored "
                       << counters_.restored.load(std::memory_order_relaxed)
                       << " session(s) from " << store_->dir();
}

void Server::persist_session(std::uint64_t sid) {
  if (!store_) return;
  std::string blob;
  std::uint64_t steps = 0;
  const bool found = table_.peek(sid, [&](ServedSession& s) {
    steps = s.session.steps_fed();
    blob = s.snapshot();
  });
  if (!found) return;
  try {
    store_->persist(sid, blob);
    persisted_steps_[sid] = steps;
    counters_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& err) {
    // Leave the previous snapshot (if any) authoritative; the next cadence
    // retries because persisted_steps_ was not advanced.
    counters_.checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
    CPSG_WARN("serve") << "checkpoint failed for session " << sid << ": "
                       << err.what();
  }
}

void Server::checkpoint_dirty() {
  if (!store_) return;
  for (const std::uint64_t sid : table_.ids()) {
    const auto it = persisted_steps_.find(sid);
    if (it != persisted_steps_.end()) {
      std::uint64_t steps = 0;
      table_.peek(sid, [&](ServedSession& s) { steps = s.session.steps_fed(); });
      if (steps == it->second) continue;  // unchanged since last persist
    }
    persist_session(sid);
  }
}

void Server::reap_store_files() {
  if (!store_) return;
  for (const std::uint64_t sid : table_.drain_reaped()) {
    store_->remove(sid);
    persisted_steps_.erase(sid);
  }
}

void Server::stop() {
  running_.store(false, std::memory_order_relaxed);
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

std::shared_ptr<const detect::SessionBlueprint> Server::blueprint_for(
    const std::string& name) {
  const auto it = blueprints_.find(name);
  if (it != blueprints_.end()) return it->second;
  const scenario::ScenarioSpec& spec = scenario::Registry::instance().at(name);
  auto blueprint = scenario::make_session_blueprint(spec);
  blueprints_.emplace(name, blueprint);
  loops_.emplace(name, spec.study.loop);
  CPSG_INFO("serve") << "realized blueprint '" << name << "' ("
                     << blueprint->size() << " detectors)";
  return blueprint;
}

ServedSession Server::open_session(FeedMode mode, const std::string& name) {
  auto blueprint = blueprint_for(name);
  ServedSession served{detect::Session(blueprint), mode, nullptr};
  if (mode == FeedMode::kNorm)
    require(blueprint->single_norm(),
            "serve: scenario '" + name +
                "' mixes norms; open it in residual or can mode");
  if (mode == FeedMode::kCan) {
    const scenario::ScenarioSpec& spec = scenario::Registry::instance().at(name);
    std::vector<can::SensorMessageBinding> bindings =
        can_bindings_for_study(spec.study.name);
    require(!bindings.empty(), "serve: study '" + spec.study.name +
                                   "' has no CAN sensor bindings");
    served.ingest = std::make_unique<CanIngest>(loops_.at(name),
                                                std::move(bindings));
  }
  return served;
}

ServedSession Server::restore_session(const std::string& blob) {
  const ServeSnapshot snap = parse_serve_snapshot(blob);
  const std::string name = detect::Session::snapshot_scenario(snap.session);
  auto blueprint = blueprint_for(name);
  ServedSession served{detect::Session::restore(blueprint, snap.session),
                       snap.mode, nullptr};
  if (snap.mode == FeedMode::kCan) {
    const scenario::ScenarioSpec& spec = scenario::Registry::instance().at(name);
    served.ingest = std::make_unique<CanIngest>(
        loops_.at(name), can_bindings_for_study(spec.study.name));
    util::ByteReader state(snap.ingest_state);
    served.ingest->load_state(state);
    state.expect_done("serve: ingest state");
  }
  return served;
}

bool Server::shard_parallel() const {
  return options_.shard_workers >= 2 && sim::scheduler_enabled();
}

Message Server::handle_feed_norm_batch(const Message& req) {
  Message reply;
  reply.type = MsgType::kVerdictsBatch;
  reply.entries.resize(req.entries.size());
  const auto run_entry = [&](std::size_t k) {
    const BatchEntry& in = req.entries[k];
    BatchEntry& out = reply.entries[k];
    out.sid = in.sid;
    const bool found = table_.with(in.sid, [&](ServedSession& s) {
      require(s.mode == FeedMode::kNorm, "serve: session is not norm-fed");
      out.masks.reserve(in.samples.size());
      for (const double norm : in.samples)
        out.masks.push_back(s.session.feed_norm(norm).new_alarms);
    });
    require(found, "serve: unknown session");
  };
  // Entries grouped by table shard: one task per shard keeps every
  // session's samples in arrival order (a sid's shard never splits), so
  // each verdict stream is bit-identical to sequential service.  A failing
  // entry fails the whole frame with kError; entries on other shards (and
  // earlier entries of its own) may already have been applied.
  std::map<std::size_t, std::vector<std::size_t>> by_shard;
  for (std::size_t k = 0; k < req.entries.size(); ++k)
    by_shard[table_.shard_index(req.entries[k].sid)].push_back(k);
  if (shard_parallel() && by_shard.size() >= 2) {
    sim::TaskGroup tasks(sim::Scheduler::instance());
    for (auto& [shard, members] : by_shard)
      tasks.submit([&run_entry, members = std::move(members)] {
        for (const std::size_t k : members) run_entry(k);
      });
    tasks.wait();  // rethrows the first entry failure -> kError reply
  } else {
    for (std::size_t k = 0; k < req.entries.size(); ++k) run_entry(k);
  }
  return reply;
}

Message Server::handle(const Message& req) {
  Message reply;
  switch (req.type) {
    case MsgType::kPing:
    case MsgType::kShutdown:
      reply.type = MsgType::kPong;
      return reply;
    case MsgType::kFeedNormBatch:
      return handle_feed_norm_batch(req);
    case MsgType::kOpen: {
      ServedSession served =
          open_session(static_cast<FeedMode>(req.mode), req.scenario);
      reply.n_detectors = static_cast<std::uint32_t>(served.session.size());
      reply.sid = table_.insert(std::move(served));
      reply.type = MsgType::kOpened;
      // Persist at birth so no live session is ever absent from the state
      // dir: a crash one instant after the reply still restores it.
      persist_session(reply.sid);
      return reply;
    }
    case MsgType::kRestore: {
      ServedSession served = restore_session(req.blob);
      reply.n_detectors = static_cast<std::uint32_t>(served.session.size());
      reply.sid = table_.insert(std::move(served));
      reply.type = MsgType::kRestored;
      persist_session(reply.sid);
      return reply;
    }
    case MsgType::kClose:
      require(table_.erase(req.sid), "serve: unknown session");
      reply.type = MsgType::kClosed;
      reply.sid = req.sid;
      return reply;
    default:
      break;
  }

  // Session-addressed requests.  Exceptions inside the callback (mode
  // mismatch, hostile frames) unwind through with() — the shard lock is a
  // std::lock_guard, so the table stays consistent and the error reaches
  // the client as kError.
  reply.sid = req.sid;
  const bool found = table_.with(req.sid, [&](ServedSession& s) {
    switch (req.type) {
      case MsgType::kFeedNorm: {
        require(s.mode == FeedMode::kNorm, "serve: session is not norm-fed");
        reply.type = MsgType::kVerdicts;
        reply.masks.reserve(req.samples.size());
        for (const double norm : req.samples)
          reply.masks.push_back(s.session.feed_norm(norm).new_alarms);
        break;
      }
      case MsgType::kFeedResidual: {
        require(s.mode == FeedMode::kResidual,
                "serve: session is not residual-fed");
        reply.type = MsgType::kVerdicts;
        linalg::Vector z(req.dim);
        const std::size_t count = req.samples.size() / req.dim;
        reply.masks.reserve(count);
        for (std::size_t k = 0; k < count; ++k) {
          for (std::size_t i = 0; i < req.dim; ++i)
            z[i] = req.samples[k * req.dim + i];
          reply.masks.push_back(s.session.feed(z).new_alarms);
        }
        break;
      }
      case MsgType::kFeedCan: {
        require(s.mode == FeedMode::kCan, "serve: session is not CAN-fed");
        require(s.ingest != nullptr, "serve: session has no CAN ingest");
        const std::size_t mpi = s.ingest->messages_per_instant();
        require(mpi > 0 && req.frames.size() % mpi == 0,
                "serve: kFeedCan frame count not a whole number of instants");
        reply.type = MsgType::kVerdicts;
        reply.masks.reserve(req.frames.size() / mpi);
        for (std::size_t k = 0; k * mpi < req.frames.size(); ++k) {
          const linalg::Vector& z =
              s.ingest->ingest(req.frames.data() + k * mpi, mpi);
          reply.masks.push_back(s.session.feed(z).new_alarms);
        }
        break;
      }
      case MsgType::kQuery: {
        reply.type = MsgType::kAlarms;
        reply.steps_fed = s.session.steps_fed();
        reply.first_alarms.assign(s.session.first_alarms().begin(),
                                  s.session.first_alarms().end());
        break;
      }
      case MsgType::kSnapshot:
        reply.type = MsgType::kSnapshotData;
        reply.blob = s.snapshot();
        break;
      default:
        throw util::InvalidArgument(
            std::string("serve: unexpected client message ") +
            msg_type_name(req.type));
    }
  });
  require(found, "serve: unknown session");
  return reply;
}

void Server::accept_clients(int listener) {
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE) {
        // fd table exhausted.  Returning would hot-spin (the listener stays
        // readable), so shed the newcomer: momentarily release the reserve
        // descriptor, accept-and-close one connection, reclaim the reserve.
        if (reserve_fd_ >= 0) {
          ::close(reserve_fd_);
          reserve_fd_ = -1;
        }
        const int shed = ::accept(listener, nullptr, nullptr);
        if (shed >= 0) ::close(shed);
        reserve_fd_ = ::open("/dev/null", O_RDONLY);
        counters_.shed_no_fds.fetch_add(1, std::memory_order_relaxed);
        if (shed < 0) return;  // could not shed either: give up this round
        continue;
      }
      return;  // EAGAIN or transient error: nothing more to accept
    }
    if (options_.max_connections != 0 &&
        connections_.size() >= options_.max_connections) {
      // Over the cap: shed the newcomer, never the established clients.
      ::close(fd);
      counters_.shed_overload.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (util::fault::should_fail("serve_accept")) {
      ::close(fd);
      counters_.faulted_io.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    set_nonblocking(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity_tick = tick_count_;
    connections_.emplace(fd, std::move(conn));
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Server::flush_writes(Connection& conn) {
  if (conn.pending() > 0 && util::fault::should_fail("serve_write")) {
    counters_.faulted_io.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  while (conn.outoff < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.outoff,
               conn.outbuf.size() - conn.outoff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outoff += static_cast<std::size_t>(n);
      conn.last_activity_tick = tick_count_;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  conn.outbuf.clear();
  conn.outoff = 0;
  return true;
}

/// One decoded (or decode-failed) request of a poll round and the reply
/// slot dispatch() fills for it.
struct Server::Pending {
  std::optional<Message> req;  ///< nullopt: decode failed, reply is ready
  Message reply;
};

namespace {

/// Requests that touch exactly one session through its table shard — the
/// unit of order the shard-worker dispatch must (and only must) preserve.
bool session_addressed(MsgType type) {
  switch (type) {
    case MsgType::kFeedNorm:
    case MsgType::kFeedResidual:
    case MsgType::kFeedCan:
    case MsgType::kQuery:
    case MsgType::kSnapshot:
    case MsgType::kClose:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Server::dispatch(std::vector<Pending>& batch) {
  const auto answer = [this](Pending& p) {
    try {
      p.reply = handle(*p.req);
    } catch (const std::exception& err) {
      // Per-request failure: session state is unchanged, the framing is
      // intact, so the connection stays usable.
      p.reply = Message{};
      p.reply.type = MsgType::kError;
      p.reply.blob = err.what();
    }
  };
  if (!shard_parallel()) {
    for (Pending& p : batch)
      if (p.req) answer(p);
    return;
  }
  // Shard-worker path: a consecutive run of session-addressed requests
  // fans out across the scheduler, one task per touched table shard.  A
  // session's requests land on one shard — one task — in arrival order,
  // so its verdict stream is bit-identical to inline service.  Control
  // requests (open, restore, ping, shutdown, batch feeds with their own
  // internal fan-out) are barriers handled inline by the poll thread.
  std::size_t i = 0;
  while (i < batch.size()) {
    if (!batch[i].req) {
      ++i;
      continue;
    }
    if (!session_addressed(batch[i].req->type)) {
      answer(batch[i]);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < batch.size() && batch[j].req &&
           session_addressed(batch[j].req->type))
      ++j;
    std::map<std::size_t, std::vector<std::size_t>> by_shard;
    for (std::size_t k = i; k < j; ++k)
      by_shard[table_.shard_index(batch[k].req->sid)].push_back(k);
    if (by_shard.size() < 2) {
      for (std::size_t k = i; k < j; ++k) answer(batch[k]);
    } else {
      sim::TaskGroup tasks(sim::Scheduler::instance());
      for (auto& [shard, members] : by_shard)
        tasks.submit([&answer, &batch, members = std::move(members)] {
          for (const std::size_t k : members) answer(batch[k]);
        });
      tasks.wait();  // answer() swallows request errors; nothing rethrows
    }
    i = j;
  }
}

bool Server::service_readable(Connection& conn) {
  if (util::fault::should_fail("serve_read")) {
    counters_.faulted_io.fetch_add(1, std::memory_order_relaxed);
    return false;  // drop the connection, as a failed read would
  }
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.reader.append(buf, static_cast<std::size_t>(n));
      conn.last_activity_tick = tick_count_;
      continue;
    }
    if (n == 0) return false;  // orderly close
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  // Decode every complete frame first, then dispatch: the split is what
  // lets the shard-worker path see the whole poll round's worth of work.
  std::vector<Pending> batch;
  try {
    while (const std::optional<std::string> body = conn.reader.next()) {
      Pending p;
      try {
        p.req = decode_body(*body);
      } catch (const std::exception& err) {
        p.reply.type = MsgType::kError;
        p.reply.blob = err.what();
      }
      batch.push_back(std::move(p));
    }
  } catch (const std::exception& err) {
    // Deframing failure (oversized announcement): the stream cannot be
    // resynchronized — drop the connection.
    CPSG_WARN("serve") << "dropping connection: " << err.what();
    return false;
  }

  dispatch(batch);

  for (Pending& p : batch) {
    conn.outbuf += encode_frame(p.reply);
    if (p.req && p.req->type == MsgType::kShutdown) {
      CPSG_INFO("serve") << "shutdown requested by client";
      running_.store(false, std::memory_order_relaxed);
    }
  }
  return flush_writes(conn);
}

void Server::run() {
  running_.store(true, std::memory_order_relaxed);
  using clock = std::chrono::steady_clock;
  const auto tick_period =
      std::chrono::milliseconds(std::max(1, options_.tick_millis));
  auto next_tick = clock::now() + tick_period;
  while (running_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    if (unix_listener_ >= 0) fds.push_back({unix_listener_, POLLIN, 0});
    if (tcp_listener_ >= 0) fds.push_back({tcp_listener_, POLLIN, 0});
    const std::size_t first_client = fds.size();
    for (const auto& [fd, conn] : connections_) {
      // Backpressure: past the soft limit of unflushed replies a
      // connection is not polled for reads — its pipelined requests wait
      // in the socket until the peer drains what it already owes us.
      short events = 0;
      if (options_.outbuf_soft_limit == 0 ||
          conn->pending() <= options_.outbuf_soft_limit)
        events |= POLLIN;
      if (conn->pending() > 0) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }

    // Time-based tick: TTL, idle expiry and the checkpoint cadence fire
    // every tick_millis of wall time whether or not the loop is busy.
    const auto now = clock::now();
    const int timeout =
        next_tick <= now
            ? 0
            : static_cast<int>(std::chrono::duration_cast<
                                   std::chrono::milliseconds>(next_tick - now)
                                   .count()) +
                  1;
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0 && errno != EINTR) break;

    if (ready > 0) {
      if (fds[0].revents != 0) {
        char drain_buf[64];
        while (::read(wake_pipe_[0], drain_buf, sizeof(drain_buf)) > 0) {}
      }
      for (std::size_t i = 1; i < first_client; ++i)
        if (fds[i].revents != 0) accept_clients(fds[i].fd);

      std::vector<int> dead;
      for (std::size_t i = first_client; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        const auto conn_it = connections_.find(fds[i].fd);
        if (conn_it == connections_.end()) continue;
        Connection& conn = *conn_it->second;
        bool alive = true;
        if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
        if (alive && (fds[i].revents & POLLOUT)) alive = flush_writes(conn);
        if (alive && (fds[i].revents & POLLIN)) alive = service_readable(conn);
        if (alive && options_.outbuf_hard_limit != 0 &&
            conn.pending() > options_.outbuf_hard_limit) {
          // A reader this far behind is a liability: cut it.  Its sessions
          // stay in the table for whoever reconnects.
          CPSG_WARN("serve") << "dropping connection fd " << conn.fd << ": "
                             << conn.pending()
                             << " unflushed bytes past the hard limit";
          counters_.dropped_backpressure.fetch_add(1,
                                                   std::memory_order_relaxed);
          alive = false;
        }
        if (!alive) dead.push_back(fds[i].fd);
      }
      for (const int fd : dead) {
        ::close(fd);
        connections_.erase(fd);
      }
    }

    if (clock::now() >= next_tick) {
      on_tick();
      next_tick += tick_period;
      // A long stall (debugger, swap storm) must not queue a tick burst.
      if (next_tick < clock::now()) next_tick = clock::now() + tick_period;
    }
  }
  drain();
}

void Server::on_tick() {
  ++tick_count_;
  table_.tick();
  reap_store_files();
  if (options_.idle_conn_ticks > 0) {
    std::vector<int> idle;
    for (const auto& [fd, conn] : connections_)
      if (tick_count_ - conn->last_activity_tick >= options_.idle_conn_ticks)
        idle.push_back(fd);
    for (const int fd : idle) {
      ::close(fd);
      connections_.erase(fd);
      counters_.idle_closed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (store_ && options_.checkpoint_ticks > 0 &&
      tick_count_ % options_.checkpoint_ticks == 0)
    checkpoint_dirty();
}

void Server::drain() {
  // Bounded graceful drain: flush what clients are owed (the kPong
  // answering kShutdown, tail verdicts) without letting a blocked peer
  // hang teardown, then land a final checkpoint.
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() +
      std::chrono::milliseconds(std::max(0, options_.drain_deadline_ms));
  while (true) {
    std::vector<pollfd> fds;
    for (const auto& [fd, conn] : connections_)
      if (conn->pending() > 0) fds.push_back({fd, POLLOUT, 0});
    if (fds.empty()) break;
    const auto now = clock::now();
    if (now >= deadline) break;
    const int timeout =
        static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count()) +
        1;
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;
    std::vector<int> dead;
    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      if (!flush_writes(*connections_.at(p.fd))) dead.push_back(p.fd);
    }
    for (const int fd : dead) {
      ::close(fd);
      connections_.erase(fd);
    }
  }
  checkpoint_dirty();
  reap_store_files();
}

}  // namespace cpsguard::serve
