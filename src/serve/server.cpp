#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/service.hpp"
#include "serve/protocol.hpp"
#include "sim/scheduler.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"

namespace cpsguard::serve {

using util::require;

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  require(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
          "serve: fcntl(O_NONBLOCK) failed");
}

int make_unix_listener(const std::string& path) {
  require(path.size() < sizeof(sockaddr_un{}.sun_path),
          "serve: unix socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, "serve: socket(AF_UNIX) failed");
  ::unlink(path.c_str());  // stale socket from a killed server
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    throw util::InvalidArgument("serve: cannot bind unix socket " + path);
  }
  set_nonblocking(fd);
  return fd;
}

int make_tcp_listener(std::uint16_t port, std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, "serve: socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    throw util::InvalidArgument("serve: cannot bind loopback TCP port " +
                                std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port = ntohs(bound.sin_port);
  set_nonblocking(fd);
  return fd;
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  FrameReader reader;
  std::string outbuf;
  std::size_t outoff = 0;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), table_(options_.table) {
  require(!options_.unix_path.empty() || options_.tcp,
          "serve: enable a unix socket or TCP listener");
  if (!options_.unix_path.empty())
    unix_listener_ = make_unix_listener(options_.unix_path);
  if (options_.tcp)
    tcp_listener_ = make_tcp_listener(options_.tcp_port, bound_tcp_port_);
  require(::pipe(wake_pipe_) == 0, "serve: pipe() failed");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
}

Server::~Server() {
  for (auto& [fd, conn] : connections_) ::close(fd);
  if (unix_listener_ >= 0) ::close(unix_listener_);
  if (tcp_listener_ >= 0) ::close(tcp_listener_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void Server::stop() {
  running_.store(false, std::memory_order_relaxed);
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

std::shared_ptr<const detect::SessionBlueprint> Server::blueprint_for(
    const std::string& name) {
  const auto it = blueprints_.find(name);
  if (it != blueprints_.end()) return it->second;
  const scenario::ScenarioSpec& spec = scenario::Registry::instance().at(name);
  auto blueprint = scenario::make_session_blueprint(spec);
  blueprints_.emplace(name, blueprint);
  loops_.emplace(name, spec.study.loop);
  CPSG_INFO("serve") << "realized blueprint '" << name << "' ("
                     << blueprint->size() << " detectors)";
  return blueprint;
}

ServedSession Server::open_session(FeedMode mode, const std::string& name) {
  auto blueprint = blueprint_for(name);
  ServedSession served{detect::Session(blueprint), mode, nullptr};
  if (mode == FeedMode::kNorm)
    require(blueprint->single_norm(),
            "serve: scenario '" + name +
                "' mixes norms; open it in residual or can mode");
  if (mode == FeedMode::kCan) {
    const scenario::ScenarioSpec& spec = scenario::Registry::instance().at(name);
    std::vector<can::SensorMessageBinding> bindings =
        can_bindings_for_study(spec.study.name);
    require(!bindings.empty(), "serve: study '" + spec.study.name +
                                   "' has no CAN sensor bindings");
    served.ingest = std::make_unique<CanIngest>(loops_.at(name),
                                                std::move(bindings));
  }
  return served;
}

ServedSession Server::restore_session(const std::string& blob) {
  const ServeSnapshot snap = parse_serve_snapshot(blob);
  const std::string name = detect::Session::snapshot_scenario(snap.session);
  auto blueprint = blueprint_for(name);
  ServedSession served{detect::Session::restore(blueprint, snap.session),
                       snap.mode, nullptr};
  if (snap.mode == FeedMode::kCan) {
    const scenario::ScenarioSpec& spec = scenario::Registry::instance().at(name);
    served.ingest = std::make_unique<CanIngest>(
        loops_.at(name), can_bindings_for_study(spec.study.name));
    util::ByteReader state(snap.ingest_state);
    served.ingest->load_state(state);
    state.expect_done("serve: ingest state");
  }
  return served;
}

bool Server::shard_parallel() const {
  return options_.shard_workers >= 2 && sim::scheduler_enabled();
}

Message Server::handle_feed_norm_batch(const Message& req) {
  Message reply;
  reply.type = MsgType::kVerdictsBatch;
  reply.entries.resize(req.entries.size());
  const auto run_entry = [&](std::size_t k) {
    const BatchEntry& in = req.entries[k];
    BatchEntry& out = reply.entries[k];
    out.sid = in.sid;
    const bool found = table_.with(in.sid, [&](ServedSession& s) {
      require(s.mode == FeedMode::kNorm, "serve: session is not norm-fed");
      out.masks.reserve(in.samples.size());
      for (const double norm : in.samples)
        out.masks.push_back(s.session.feed_norm(norm).new_alarms);
    });
    require(found, "serve: unknown session");
  };
  // Entries grouped by table shard: one task per shard keeps every
  // session's samples in arrival order (a sid's shard never splits), so
  // each verdict stream is bit-identical to sequential service.  A failing
  // entry fails the whole frame with kError; entries on other shards (and
  // earlier entries of its own) may already have been applied.
  std::map<std::size_t, std::vector<std::size_t>> by_shard;
  for (std::size_t k = 0; k < req.entries.size(); ++k)
    by_shard[table_.shard_index(req.entries[k].sid)].push_back(k);
  if (shard_parallel() && by_shard.size() >= 2) {
    sim::TaskGroup tasks(sim::Scheduler::instance());
    for (auto& [shard, members] : by_shard)
      tasks.submit([&run_entry, members = std::move(members)] {
        for (const std::size_t k : members) run_entry(k);
      });
    tasks.wait();  // rethrows the first entry failure -> kError reply
  } else {
    for (std::size_t k = 0; k < req.entries.size(); ++k) run_entry(k);
  }
  return reply;
}

Message Server::handle(const Message& req) {
  Message reply;
  switch (req.type) {
    case MsgType::kPing:
    case MsgType::kShutdown:
      reply.type = MsgType::kPong;
      return reply;
    case MsgType::kFeedNormBatch:
      return handle_feed_norm_batch(req);
    case MsgType::kOpen: {
      ServedSession served =
          open_session(static_cast<FeedMode>(req.mode), req.scenario);
      reply.n_detectors = static_cast<std::uint32_t>(served.session.size());
      reply.sid = table_.insert(std::move(served));
      reply.type = MsgType::kOpened;
      return reply;
    }
    case MsgType::kRestore: {
      ServedSession served = restore_session(req.blob);
      reply.n_detectors = static_cast<std::uint32_t>(served.session.size());
      reply.sid = table_.insert(std::move(served));
      reply.type = MsgType::kRestored;
      return reply;
    }
    case MsgType::kClose:
      require(table_.erase(req.sid), "serve: unknown session");
      reply.type = MsgType::kClosed;
      reply.sid = req.sid;
      return reply;
    default:
      break;
  }

  // Session-addressed requests.  Exceptions inside the callback (mode
  // mismatch, hostile frames) unwind through with() — the shard lock is a
  // std::lock_guard, so the table stays consistent and the error reaches
  // the client as kError.
  reply.sid = req.sid;
  const bool found = table_.with(req.sid, [&](ServedSession& s) {
    switch (req.type) {
      case MsgType::kFeedNorm: {
        require(s.mode == FeedMode::kNorm, "serve: session is not norm-fed");
        reply.type = MsgType::kVerdicts;
        reply.masks.reserve(req.samples.size());
        for (const double norm : req.samples)
          reply.masks.push_back(s.session.feed_norm(norm).new_alarms);
        break;
      }
      case MsgType::kFeedResidual: {
        require(s.mode == FeedMode::kResidual,
                "serve: session is not residual-fed");
        reply.type = MsgType::kVerdicts;
        linalg::Vector z(req.dim);
        const std::size_t count = req.samples.size() / req.dim;
        reply.masks.reserve(count);
        for (std::size_t k = 0; k < count; ++k) {
          for (std::size_t i = 0; i < req.dim; ++i)
            z[i] = req.samples[k * req.dim + i];
          reply.masks.push_back(s.session.feed(z).new_alarms);
        }
        break;
      }
      case MsgType::kFeedCan: {
        require(s.mode == FeedMode::kCan, "serve: session is not CAN-fed");
        require(s.ingest != nullptr, "serve: session has no CAN ingest");
        const std::size_t mpi = s.ingest->messages_per_instant();
        require(mpi > 0 && req.frames.size() % mpi == 0,
                "serve: kFeedCan frame count not a whole number of instants");
        reply.type = MsgType::kVerdicts;
        reply.masks.reserve(req.frames.size() / mpi);
        for (std::size_t k = 0; k * mpi < req.frames.size(); ++k) {
          const linalg::Vector& z =
              s.ingest->ingest(req.frames.data() + k * mpi, mpi);
          reply.masks.push_back(s.session.feed(z).new_alarms);
        }
        break;
      }
      case MsgType::kQuery: {
        reply.type = MsgType::kAlarms;
        reply.steps_fed = s.session.steps_fed();
        reply.first_alarms.assign(s.session.first_alarms().begin(),
                                  s.session.first_alarms().end());
        break;
      }
      case MsgType::kSnapshot:
        reply.type = MsgType::kSnapshotData;
        reply.blob = s.snapshot();
        break;
      default:
        throw util::InvalidArgument(
            std::string("serve: unexpected client message ") +
            msg_type_name(req.type));
    }
  });
  require(found, "serve: unknown session");
  return reply;
}

void Server::accept_clients(int listener) {
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: nothing more to accept
    set_nonblocking(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    connections_.emplace(fd, std::move(conn));
  }
}

bool Server::flush_writes(Connection& conn) {
  while (conn.outoff < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.outoff,
               conn.outbuf.size() - conn.outoff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outoff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  conn.outbuf.clear();
  conn.outoff = 0;
  return true;
}

/// One decoded (or decode-failed) request of a poll round and the reply
/// slot dispatch() fills for it.
struct Server::Pending {
  std::optional<Message> req;  ///< nullopt: decode failed, reply is ready
  Message reply;
};

namespace {

/// Requests that touch exactly one session through its table shard — the
/// unit of order the shard-worker dispatch must (and only must) preserve.
bool session_addressed(MsgType type) {
  switch (type) {
    case MsgType::kFeedNorm:
    case MsgType::kFeedResidual:
    case MsgType::kFeedCan:
    case MsgType::kQuery:
    case MsgType::kSnapshot:
    case MsgType::kClose:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Server::dispatch(std::vector<Pending>& batch) {
  const auto answer = [this](Pending& p) {
    try {
      p.reply = handle(*p.req);
    } catch (const std::exception& err) {
      // Per-request failure: session state is unchanged, the framing is
      // intact, so the connection stays usable.
      p.reply = Message{};
      p.reply.type = MsgType::kError;
      p.reply.blob = err.what();
    }
  };
  if (!shard_parallel()) {
    for (Pending& p : batch)
      if (p.req) answer(p);
    return;
  }
  // Shard-worker path: a consecutive run of session-addressed requests
  // fans out across the scheduler, one task per touched table shard.  A
  // session's requests land on one shard — one task — in arrival order,
  // so its verdict stream is bit-identical to inline service.  Control
  // requests (open, restore, ping, shutdown, batch feeds with their own
  // internal fan-out) are barriers handled inline by the poll thread.
  std::size_t i = 0;
  while (i < batch.size()) {
    if (!batch[i].req) {
      ++i;
      continue;
    }
    if (!session_addressed(batch[i].req->type)) {
      answer(batch[i]);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < batch.size() && batch[j].req &&
           session_addressed(batch[j].req->type))
      ++j;
    std::map<std::size_t, std::vector<std::size_t>> by_shard;
    for (std::size_t k = i; k < j; ++k)
      by_shard[table_.shard_index(batch[k].req->sid)].push_back(k);
    if (by_shard.size() < 2) {
      for (std::size_t k = i; k < j; ++k) answer(batch[k]);
    } else {
      sim::TaskGroup tasks(sim::Scheduler::instance());
      for (auto& [shard, members] : by_shard)
        tasks.submit([&answer, &batch, members = std::move(members)] {
          for (const std::size_t k : members) answer(batch[k]);
        });
      tasks.wait();  // answer() swallows request errors; nothing rethrows
    }
    i = j;
  }
}

bool Server::service_readable(Connection& conn) {
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.reader.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // orderly close
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  // Decode every complete frame first, then dispatch: the split is what
  // lets the shard-worker path see the whole poll round's worth of work.
  std::vector<Pending> batch;
  try {
    while (const std::optional<std::string> body = conn.reader.next()) {
      Pending p;
      try {
        p.req = decode_body(*body);
      } catch (const std::exception& err) {
        p.reply.type = MsgType::kError;
        p.reply.blob = err.what();
      }
      batch.push_back(std::move(p));
    }
  } catch (const std::exception& err) {
    // Deframing failure (oversized announcement): the stream cannot be
    // resynchronized — drop the connection.
    CPSG_WARN("serve") << "dropping connection: " << err.what();
    return false;
  }

  dispatch(batch);

  for (Pending& p : batch) {
    conn.outbuf += encode_frame(p.reply);
    if (p.req && p.req->type == MsgType::kShutdown) {
      CPSG_INFO("serve") << "shutdown requested by client";
      running_.store(false, std::memory_order_relaxed);
    }
  }
  return flush_writes(conn);
}

void Server::run() {
  running_.store(true, std::memory_order_relaxed);
  while (running_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    if (unix_listener_ >= 0) fds.push_back({unix_listener_, POLLIN, 0});
    if (tcp_listener_ >= 0) fds.push_back({tcp_listener_, POLLIN, 0});
    const std::size_t first_client = fds.size();
    for (const auto& [fd, conn] : connections_)
      fds.push_back({fd, static_cast<short>(
                             POLLIN | (conn->outbuf.empty() ? 0 : POLLOUT)),
                     0});

    const int ready = ::poll(fds.data(), fds.size(), options_.tick_millis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      table_.tick();  // idle: advance the TTL clock
      continue;
    }

    if (fds[0].revents != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {}
    }
    for (std::size_t i = 1; i < first_client; ++i)
      if (fds[i].revents != 0) accept_clients(fds[i].fd);

    std::vector<int> dead;
    for (std::size_t i = first_client; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      Connection& conn = *connections_.at(fds[i].fd);
      bool alive = true;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
      if (alive && (fds[i].revents & POLLOUT)) alive = flush_writes(conn);
      if (alive && (fds[i].revents & POLLIN)) alive = service_readable(conn);
      if (!alive) dead.push_back(fds[i].fd);
    }
    for (const int fd : dead) {
      ::close(fd);
      connections_.erase(fd);
    }
  }
  // Best-effort flush of pending replies (the kPong answering kShutdown).
  for (auto& [fd, conn] : connections_) flush_writes(*conn);
}

}  // namespace cpsguard::serve
