// protocol.hpp — the length-framed wire protocol of cpsguard_serve.
//
// Every message travels as one frame:
//
//   u32 length (LE, length of type + body, capped at kMaxFrameBytes)
//   u8  type   (MsgType)
//   body       (type-specific fields, util::ByteWriter encoding: LE
//               integers, IEEE-754 f64 bit patterns, u32-length-prefixed
//               strings)
//
// Client -> server:
//   kOpen         u8 mode, str scenario
//   kFeedNorm     u64 sid, u32 count, count x f64 residual norms
//   kFeedResidual u64 sid, u32 count, u32 dim, count*dim x f64 residuals
//   kFeedCan      u64 sid, u32 count, count x (u32 id, u8 flags(bit0 =
//                 extended), u8 dlc, 8 raw bytes) CAN frames
//   kQuery        u64 sid
//   kSnapshot     u64 sid
//   kRestore      str blob (a kSnapshotData blob)
//   kClose        u64 sid
//   kPing         (empty)
//   kShutdown     (empty; server stops accepting after replying kPong)
//   kFeedNormBatch u32 n_entries, n_entries x (u64 sid, u32 count, count x
//                 f64 residual norms) — many sessions' norm runs in ONE
//                 frame, so high-rate ingesters amortize per-frame dispatch
//                 (and the server can fan entries out across table shards)
//
// Server -> client:
//   kOpened       u64 sid, u32 n_detectors
//   kVerdicts     u64 sid, u32 count, count x u64 new-alarm masks (one per
//                 consumed instant, bit i = detector i newly alarmed)
//   kAlarms       u64 sid, u64 steps_fed, u32 n, n x (u8 has [u64 step])
//   kSnapshotData str blob (integrity-framed serve snapshot; opaque)
//   kRestored     u64 sid, u32 n_detectors
//   kClosed       u64 sid
//   kPong         (empty)
//   kError        str text (the request it answers failed; session state is
//                 unchanged, the connection stays usable)
//   kVerdictsBatch u32 n_entries, n_entries x (u64 sid, u32 count, count x
//                 u64 new-alarm masks) — answers kFeedNormBatch, entries in
//                 request order
//
// Versioning: the protocol has no version field of its own — the session
// snapshot blob inside kSnapshotData/kRestore carries the (checked) state
// version, and the frame layout above is append-only: new message types get
// new type codes, existing bodies never change shape.  A receiver rejects
// unknown type codes with kError instead of guessing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "can/frame.hpp"

namespace cpsguard::serve {

/// Hard cap on one frame's type + body, enforced by both ends: a peer that
/// announces more is malformed or hostile and its connection is dropped.
constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// How a session wants its samples delivered.
enum class FeedMode : std::uint8_t {
  kNorm = 0,      ///< precomputed residual norms (feed_norm fast path)
  kResidual = 1,  ///< full residual vectors
  kCan = 2,       ///< raw CAN frames, decoded + observed server-side
};

enum class MsgType : std::uint8_t {
  kOpen = 1,
  kFeedNorm = 2,
  kFeedResidual = 3,
  kFeedCan = 4,
  kQuery = 5,
  kSnapshot = 6,
  kRestore = 7,
  kClose = 8,
  kPing = 9,
  kShutdown = 10,
  kFeedNormBatch = 11,
  kOpened = 64,
  kVerdicts = 65,
  kAlarms = 66,
  kSnapshotData = 67,
  kRestored = 68,
  kClosed = 69,
  kPong = 70,
  kVerdictsBatch = 71,
  kError = 127,
};

const char* msg_type_name(MsgType type);

/// One session's run inside a kFeedNormBatch frame (samples) or its
/// kVerdictsBatch reply (masks); the unused vector stays empty.
struct BatchEntry {
  std::uint64_t sid = 0;
  std::vector<double> samples;
  std::vector<std::uint64_t> masks;
};

/// One decoded message: the union of all body fields, tagged by `type`
/// (unused fields stay at their defaults — the codec only reads/writes the
/// fields its type defines, see the header comment).
struct Message {
  MsgType type = MsgType::kPing;
  std::uint8_t mode = 0;                ///< kOpen (FeedMode)
  std::string scenario;                 ///< kOpen
  std::uint64_t sid = 0;                ///< session-addressed messages
  std::uint32_t dim = 0;                ///< kFeedResidual: residual dimension
  std::vector<double> samples;          ///< kFeedNorm / kFeedResidual
  std::vector<can::CanFrame> frames;    ///< kFeedCan
  std::uint32_t n_detectors = 0;        ///< kOpened / kRestored
  std::vector<std::uint64_t> masks;     ///< kVerdicts
  std::uint64_t steps_fed = 0;          ///< kAlarms
  std::vector<std::optional<std::uint64_t>> first_alarms;  ///< kAlarms
  std::string blob;                     ///< kSnapshotData / kRestore / kError
  std::vector<BatchEntry> entries;      ///< kFeedNormBatch / kVerdictsBatch
};

/// Encodes `msg` as one complete frame (length prefix included).
/// Throws util::InvalidArgument when the body would exceed kMaxFrameBytes.
std::string encode_frame(const Message& msg);

/// Decodes one deframed body (type byte + payload, no length prefix).
/// Throws util::InvalidArgument on unknown types, truncated or oversized
/// bodies, trailing bytes, or non-finite sample values.
Message decode_body(const std::string& body);

/// Incremental deframer: append() raw socket bytes, next() pops complete
/// bodies (type + payload) in arrival order.  Throws util::InvalidArgument
/// the moment a frame header announces more than kMaxFrameBytes — the
/// caller must drop the connection, the stream cannot be resynchronized.
class FrameReader {
 public:
  void append(const char* data, std::size_t len);
  std::optional<std::string> next();
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;  // compacted lazily
};

}  // namespace cpsguard::serve
