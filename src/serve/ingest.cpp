#include "serve/ingest.hpp"

#include <string>
#include <utility>

#include "models/vsc_can.hpp"
#include "util/status.hpp"

namespace cpsguard::serve {

using linalg::Matrix;
using linalg::Vector;
using util::require;

namespace {

// The step kernel's exact-mode accumulators (linalg/step_kernel.cpp):
// acc starts at 0.0 and adds row[c] * v[c] in column order.  Replicating
// them — not calling Matrix::operator* — is what makes observe() bit-
// identical to the recorded loop under -ffp-contract=off.
inline double dot(const double* row, const double* v, std::size_t count) {
  double acc = 0.0;
  for (std::size_t c = 0; c < count; ++c) acc += row[c] * v[c];
  return acc;
}

inline double dot_diff(const double* row, const double* a, const double* b,
                       std::size_t count) {
  double acc = 0.0;
  for (std::size_t c = 0; c < count; ++c) acc += row[c] * (a[c] - b[c]);
  return acc;
}

}  // namespace

ResidualObserver::ResidualObserver(const control::LoopConfig& config) {
  config.validate();
  a_ = config.plant.a;
  b_ = config.plant.b;
  c_ = config.plant.c;
  d_ = config.plant.d;
  l_ = config.kalman_gain;
  k_ = config.feedback_gain;
  x_ss_ = config.operating_point.x_ss;
  u_ss_ = config.operating_point.u_ss;
  xhat1_ = config.xhat1;
  u1_ = config.u1;
  reset();
}

void ResidualObserver::reset() {
  xhat_ = xhat1_;
  u_ = u1_;
  z_.resize(c_.rows());
  xhatn_.resize(a_.rows());
}

const Vector& ResidualObserver::observe(const Vector& y) {
  const std::size_t n = a_.rows(), m = c_.rows(), p = b_.cols();
  require(y.size() == m, "ResidualObserver: measurement dimension mismatch");
  // ŷ_r = (0.0 + C_r·x̂) + D_r·u;  z_r = y_r - ŷ_r.  y_r is the measured
  // value — noise, attack and CAN quantization already folded in upstream.
  for (std::size_t r = 0; r < m; ++r) {
    double yh = 0.0 + dot(c_.data() + r * n, xhat_.data(), n);
    yh = yh + dot(d_.data() + r * p, u_.data(), p);
    z_[r] = y[r] - yh;
  }
  // x̂_{k+1} = (0.0 + A_r·x̂) + B_r·u + L_r·z
  for (std::size_t r = 0; r < n; ++r) {
    double xh = 0.0 + dot(a_.data() + r * n, xhat_.data(), n);
    xh = xh + dot(b_.data() + r * p, u_.data(), p);
    xh = xh + dot(l_.data() + r * m, z_.data(), m);
    xhatn_[r] = xh;
  }
  std::swap(xhat_, xhatn_);
  // u_{k+1} = u_ss - K (x̂_{k+1} - x_ss), deviation formed inside the dot.
  for (std::size_t r = 0; r < p; ++r)
    u_[r] = u_ss_[r] - (0.0 + dot_diff(k_.data() + r * n, xhat_.data(),
                                       x_ss_.data(), n));
  return z_;
}

void ResidualObserver::save_state(util::ByteWriter& out) const {
  out.u32(static_cast<std::uint32_t>(xhat_.size()));
  out.u32(static_cast<std::uint32_t>(u_.size()));
  for (std::size_t i = 0; i < xhat_.size(); ++i) out.f64(xhat_[i]);
  for (std::size_t i = 0; i < u_.size(); ++i) out.f64(u_[i]);
}

void ResidualObserver::load_state(util::ByteReader& in) {
  require(in.u32() == xhat_.size() && in.u32() == u_.size(),
          "ResidualObserver: state dimension mismatch");
  for (std::size_t i = 0; i < xhat_.size(); ++i) xhat_[i] = in.f64();
  for (std::size_t i = 0; i < u_.size(); ++i) u_[i] = in.f64();
}

CanIngest::CanIngest(const control::LoopConfig& config,
                     std::vector<can::SensorMessageBinding> bindings)
    : observer_(config), bindings_(std::move(bindings)) {
  const std::size_t m = config.plant.num_outputs();
  require(!bindings_.empty(), "CanIngest: needs at least one binding");
  std::vector<bool> covered(m, false);
  for (const can::SensorMessageBinding& b : bindings_) {
    b.validate(m);
    for (const std::size_t idx : b.output_indices) {
      require(!covered[idx], "CanIngest: output " + std::to_string(idx) +
                                 " bound to two messages");
      covered[idx] = true;
    }
  }
  for (std::size_t i = 0; i < m; ++i)
    require(covered[i], "CanIngest: output " + std::to_string(i) + " not bound");
  y_.resize(m);
  seen_.assign(bindings_.size(), 0);
}

const Vector& CanIngest::ingest(const can::CanFrame* frames, std::size_t count) {
  require(count == bindings_.size(),
          "CanIngest: expected " + std::to_string(bindings_.size()) +
              " frames per instant, got " + std::to_string(count));
  seen_.assign(bindings_.size(), 0);
  for (std::size_t f = 0; f < count; ++f) {
    const can::CanFrame& frame = frames[f];
    bool matched = false;
    for (std::size_t b = 0; b < bindings_.size(); ++b) {
      const can::MessageSpec& spec = bindings_[b].message;
      if (frame.id != spec.id || frame.extended != spec.extended) continue;
      require(!seen_[b], "CanIngest: duplicate frame for message " + spec.name);
      seen_[b] = 1;
      // unpack() re-validates dlc and payload framing — a truncated or
      // padded hostile frame dies here, before any state advances.
      const std::vector<double> values = spec.unpack(frame);
      for (std::size_t i = 0; i < values.size(); ++i)
        y_[bindings_[b].output_indices[i]] = values[i];
      matched = true;
      break;
    }
    require(matched, "CanIngest: unknown CAN identifier " +
                         std::to_string(frame.id));
  }
  return observer_.observe(y_);
}

std::vector<can::SensorMessageBinding> can_bindings_for_study(
    const std::string& study_name) {
  if (study_name == "vsc") return models::vsc_sensor_bindings();
  return {};
}

}  // namespace cpsguard::serve
