// server.hpp — the cpsguard_serve ingestion server.
//
// A single-threaded poll() loop multiplexing any number of client
// connections over a unix-domain socket (tests, same-host deployments)
// and/or a loopback TCP listener.  Each connection speaks the length-framed
// protocol of serve/protocol.hpp; sessions live in the shared SessionTable
// and are addressed by id, so one connection can drive thousands of
// sessions and a session survives its creator's disconnect (until evicted,
// expired or closed).
//
// Blueprints are realized once per scenario name on first open (calibration
// and synthesis cost), cached, and shared by every session of that
// scenario; the per-open cost is cloning the detector instances.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/session_table.hpp"

namespace cpsguard::serve {

struct ServerOptions {
  std::string unix_path;        ///< empty = no unix listener
  bool tcp = false;             ///< enable the loopback TCP listener
  std::uint16_t tcp_port = 0;   ///< 0 = ephemeral (read back via tcp_port())
  SessionTable::Options table;
  /// Idle poll granularity; each expiry advances the table's TTL clock one
  /// tick, so ttl_ticks * this is the session idle timeout.
  int tick_millis = 1000;
  /// Shard-worker dispatch: at >= 2 (and with sim::scheduler_enabled()),
  /// session-addressed work read in one poll round fans out across the
  /// process-wide scheduler, one task per touched SessionTable shard —
  /// per-session request order is preserved (a session's shard never
  /// splits), so every session's verdict stream is bit-identical to
  /// single-threaded service.  The poll loop stays the sole IO/accept
  /// dispatcher.  0/1 = today's fully single-threaded path.
  std::size_t shard_workers = 0;
};

class Server {
 public:
  /// Binds the configured listeners (throws util::InvalidArgument when
  /// neither is enabled or a bind fails).  Serving starts with run().
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The TCP listener's bound port (0 when TCP is disabled).
  std::uint16_t tcp_port() const { return bound_tcp_port_; }

  /// Serves until stop() or a kShutdown frame.  Call from one thread.
  void run();

  /// Signals run() to return; safe from any thread / signal context.
  void stop();

  SessionTable& table() { return table_; }

 private:
  struct Connection;
  struct Pending;

  std::shared_ptr<const detect::SessionBlueprint> blueprint_for(
      const std::string& scenario);
  ServedSession open_session(FeedMode mode, const std::string& scenario);
  ServedSession restore_session(const std::string& blob);
  Message handle(const Message& request);
  Message handle_feed_norm_batch(const Message& request);
  bool shard_parallel() const;
  void dispatch(std::vector<Pending>& batch);

  void accept_clients(int listener);
  bool service_readable(Connection& conn);  // false = drop connection
  bool flush_writes(Connection& conn);

  ServerOptions options_;
  SessionTable table_;
  int unix_listener_ = -1;
  int tcp_listener_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t bound_tcp_port_ = 0;
  std::atomic<bool> running_{false};
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::map<std::string, std::shared_ptr<const detect::SessionBlueprint>>
      blueprints_;
  std::map<std::string, control::LoopConfig> loops_;  // for CAN observers
};

}  // namespace cpsguard::serve
