// server.hpp — the cpsguard_serve ingestion server.
//
// A single-threaded poll() loop multiplexing any number of client
// connections over a unix-domain socket (tests, same-host deployments)
// and/or a loopback TCP listener.  Each connection speaks the length-framed
// protocol of serve/protocol.hpp; sessions live in the shared SessionTable
// and are addressed by id, so one connection can drive thousands of
// sessions and a session survives its creator's disconnect (until evicted,
// expired or closed).
//
// Blueprints are realized once per scenario name on first open (calibration
// and synthesis cost), cached, and shared by every session of that
// scenario; the per-open cost is cloning the detector instances.
//
// High availability: with `state_dir` set, every session is persisted to a
// SessionStore on open and on a checkpoint cadence (`checkpoint_ticks`
// ticks of the time-based tick clock), and a restarted server restores the
// whole table — corrupt snapshots are quarantined, not fatal.  Overload
// degrades the offender only: connections past `max_connections` are shed
// at accept, a slow reader stops being polled for reads past
// `outbuf_soft_limit` bytes of unflushed replies and is dropped past
// `outbuf_hard_limit`, and connections idle for `idle_conn_ticks` ticks
// are closed.  stop() (the SIGTERM/SIGINT path) drains: accepting ends,
// outbufs flush under `drain_deadline_ms`, a final checkpoint lands, and
// run() returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/session_store.hpp"
#include "serve/session_table.hpp"

namespace cpsguard::serve {

struct ServerOptions {
  std::string unix_path;        ///< empty = no unix listener
  bool tcp = false;             ///< enable the loopback TCP listener
  std::uint16_t tcp_port = 0;   ///< 0 = ephemeral (read back via tcp_port())
  SessionTable::Options table;
  /// Tick clock period: the table's TTL clock, idle-connection expiry and
  /// the checkpoint cadence all advance every `tick_millis` of wall time
  /// (under load too, not just when the poll loop is idle), so
  /// ttl_ticks * this is the session idle timeout.
  int tick_millis = 1000;
  /// Durability: when non-empty, sessions persist to a SessionStore here
  /// (on open/restore and every `checkpoint_ticks` ticks) and a starting
  /// server restores everything the directory holds.
  std::string state_dir;
  /// Checkpoint cadence in ticks (0 = only at open and graceful shutdown).
  std::uint64_t checkpoint_ticks = 5;
  /// Graceful-drain flush budget: after stop(), pending replies get this
  /// many milliseconds to reach their peers before connections are cut.
  int drain_deadline_ms = 2000;
  /// Connection cap (0 = unlimited): connections past it are accepted and
  /// immediately closed, shedding the newcomer without starving the rest.
  std::size_t max_connections = 0;
  /// Backpressure: a connection whose unflushed reply bytes pass the soft
  /// limit stops being polled for reads (its pipelined requests wait in
  /// the socket) until the peer drains below it; past the hard limit the
  /// connection is dropped — a reader this slow is a liability.
  std::size_t outbuf_soft_limit = 256 * 1024;
  std::size_t outbuf_hard_limit = 4 * 1024 * 1024;
  /// Connections with no read/write progress for this many ticks are
  /// closed (0 = never).  Sessions survive: they live in the table, not
  /// the connection.
  std::uint64_t idle_conn_ticks = 0;
  /// Shard-worker dispatch: at >= 2 (and with sim::scheduler_enabled()),
  /// session-addressed work read in one poll round fans out across the
  /// process-wide scheduler, one task per touched SessionTable shard —
  /// per-session request order is preserved (a session's shard never
  /// splits), so every session's verdict stream is bit-identical to
  /// single-threaded service.  The poll loop stays the sole IO/accept
  /// dispatcher.  0/1 = today's fully single-threaded path.
  std::size_t shard_workers = 0;
};

/// Operational counters, readable at any time (each is independently
/// atomic; a snapshot taken mid-run may straddle a poll round).
struct ServerStats {
  std::uint64_t accepted = 0;             ///< connections admitted
  std::uint64_t shed_overload = 0;        ///< closed at accept: over cap
  std::uint64_t shed_no_fds = 0;          ///< closed at accept: EMFILE/ENFILE
  std::uint64_t dropped_backpressure = 0; ///< outbuf passed the hard limit
  std::uint64_t idle_closed = 0;          ///< idle-connection expiries
  std::uint64_t faulted_io = 0;           ///< serve_read/serve_write injections
  std::uint64_t checkpoints = 0;          ///< session snapshots persisted
  std::uint64_t checkpoint_failures = 0;  ///< persist attempts that threw
  std::uint64_t restored = 0;             ///< sessions restored at startup
  std::uint64_t quarantined = 0;          ///< corrupt snapshots at startup
};

class Server {
 public:
  /// Binds the configured listeners (throws util::InvalidArgument when
  /// neither is enabled or a bind fails).  Serving starts with run().
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The TCP listener's bound port (0 when TCP is disabled).
  std::uint16_t tcp_port() const { return bound_tcp_port_; }

  /// Serves until stop() or a kShutdown frame.  Call from one thread.
  void run();

  /// Signals run() to return (after draining); safe from any thread /
  /// signal context.
  void stop();

  SessionTable& table() { return table_; }

  ServerStats stats() const;

 private:
  struct Connection;
  struct Pending;

  std::shared_ptr<const detect::SessionBlueprint> blueprint_for(
      const std::string& scenario);
  ServedSession open_session(FeedMode mode, const std::string& scenario);
  ServedSession restore_session(const std::string& blob);
  Message handle(const Message& request);
  Message handle_feed_norm_batch(const Message& request);
  bool shard_parallel() const;
  void dispatch(std::vector<Pending>& batch);

  void accept_clients(int listener);
  bool service_readable(Connection& conn);  // false = drop connection
  bool flush_writes(Connection& conn);

  void restore_from_store();
  void persist_session(std::uint64_t sid);  // best effort, never throws
  void checkpoint_dirty();                  // persist sessions fed since last
  void reap_store_files();
  void on_tick();
  void drain();

  ServerOptions options_;
  SessionTable table_;
  std::unique_ptr<SessionStore> store_;  // null without state_dir
  int unix_listener_ = -1;
  int tcp_listener_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int reserve_fd_ = -1;  // released to accept-and-close under EMFILE
  std::uint16_t bound_tcp_port_ = 0;
  std::atomic<bool> running_{false};
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::map<std::string, std::shared_ptr<const detect::SessionBlueprint>>
      blueprints_;
  std::map<std::string, control::LoopConfig> loops_;  // for CAN observers
  std::map<std::uint64_t, std::uint64_t> persisted_steps_;  // sid -> steps
  std::uint64_t tick_count_ = 0;

  struct Counters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> shed_overload{0};
    std::atomic<std::uint64_t> shed_no_fds{0};
    std::atomic<std::uint64_t> dropped_backpressure{0};
    std::atomic<std::uint64_t> idle_closed{0};
    std::atomic<std::uint64_t> faulted_io{0};
    std::atomic<std::uint64_t> checkpoints{0};
    std::atomic<std::uint64_t> checkpoint_failures{0};
    std::atomic<std::uint64_t> restored{0};
    std::atomic<std::uint64_t> quarantined{0};
  };
  mutable Counters counters_;
};

}  // namespace cpsguard::serve
