// client.hpp — blocking request/response client for the serve protocol.
//
// One connection, one outstanding request at a time: call() writes a frame
// and blocks until the matching reply frame arrives.  This is the driver
// used by the load generator, the smoke gate and the tests; a production
// ingester would pipeline feeds, which the server already supports (replies
// come back in request order on each connection).
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"

namespace cpsguard::serve {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(std::uint16_t port);  // loopback

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends `request`, blocks for one reply frame.  Throws
  /// util::InvalidArgument on transport failure or a malformed reply.
  Message call(const Message& request);

  /// call(), then require the reply type (kError replies surface as
  /// util::InvalidArgument carrying the server's message).
  Message expect(const Message& request, MsgType want);

  // Convenience wrappers over expect().
  std::uint64_t open(FeedMode mode, const std::string& scenario);
  std::vector<std::uint64_t> feed_norms(std::uint64_t sid,
                                        const std::vector<double>& norms);
  /// Many sessions' norm runs in one kFeedNormBatch frame; the returned
  /// entries carry each session's new-alarm masks, in request order.
  std::vector<BatchEntry> feed_norm_batch(std::vector<BatchEntry> entries);
  Message query(std::uint64_t sid);
  std::string snapshot(std::uint64_t sid);
  std::uint64_t restore(const std::string& blob);
  void close_session(std::uint64_t sid);
  void ping();
  void shutdown_server();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace cpsguard::serve
