// client.hpp — blocking request/response client for the serve protocol.
//
// One connection, one outstanding request at a time: call() writes a frame
// and blocks until the matching reply frame arrives.  This is the driver
// used by the load generator, the smoke gate and the tests; a production
// ingester would pipeline feeds, which the server already supports (replies
// come back in request order on each connection).
//
// Resilience: a client built from an Endpoint (connect(endpoint[, policy]))
// remembers how to dial, so when the transport fails — server crash, idle
// expiry, injected fault — the failing call() throws util::IoError and the
// NEXT call() transparently redials under util::RetryPolicy capped backoff.
// Requests with no server-side effect (ping, query, snapshot) go one step
// further: a transport failure mid-call reconnects and retransmits once, so
// control-plane probes ride a flapping server without the caller noticing.
// Feeds are never retransmitted — the server may have applied the samples
// before the connection died, and a blind resend would double-feed; callers
// re-synchronize via query() instead (see the load generator's chaos mode).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.hpp"
#include "util/retry.hpp"

namespace cpsguard::serve {

/// Where a client dials: a unix socket path (preferred when set) or a
/// loopback TCP port.
struct Endpoint {
  std::string unix_path;
  std::uint16_t tcp_port = 0;
};

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(std::uint16_t port);  // loopback

  /// Connects to `endpoint`, retrying the initial dial — and every later
  /// reconnect — under `reconnect` (capped exponential backoff with
  /// deterministic jitter).  Throws util::IoError when the attempt budget
  /// is exhausted.
  static Client connect(const Endpoint& endpoint,
                        util::RetryPolicy reconnect = util::RetryPolicy{});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends `request`, blocks for one reply frame.  Throws util::IoError on
  /// transport failure (closing the connection; an Endpoint-built client
  /// redials on the next call) and util::InvalidArgument on a malformed
  /// reply.
  Message call(const Message& request);

  /// call(), then require the reply type (kError replies surface as
  /// util::InvalidArgument carrying the server's message).
  Message expect(const Message& request, MsgType want);

  /// Successful dials beyond the first — how often the transport healed.
  std::uint64_t reconnects() const { return dials_ == 0 ? 0 : dials_ - 1; }

  // Convenience wrappers over expect().
  std::uint64_t open(FeedMode mode, const std::string& scenario);
  std::vector<std::uint64_t> feed_norms(std::uint64_t sid,
                                        const std::vector<double>& norms);
  /// Many sessions' norm runs in one kFeedNormBatch frame; the returned
  /// entries carry each session's new-alarm masks, in request order.
  std::vector<BatchEntry> feed_norm_batch(std::vector<BatchEntry> entries);
  Message query(std::uint64_t sid);
  std::string snapshot(std::uint64_t sid);
  std::uint64_t restore(const std::string& blob);
  void close_session(std::uint64_t sid);
  void ping();
  void shutdown_server();

 private:
  explicit Client(int fd) : fd_(fd), dials_(1) {}
  Client() = default;

  void ensure_connected();
  Message call_once(const Message& request);
  [[noreturn]] void fail_transport(const std::string& what);

  int fd_ = -1;
  FrameReader reader_;
  std::optional<Endpoint> endpoint_;
  util::RetryPolicy policy_;
  std::uint64_t dials_ = 0;
};

}  // namespace cpsguard::serve
