#include "serve/session_table.hpp"

#include <algorithm>
#include <utility>

#include "util/status.hpp"

namespace cpsguard::serve {

using util::require;

std::string ServedSession::snapshot() const {
  util::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(mode));
  out.str(session.snapshot());
  if (ingest) {
    util::ByteWriter state;
    ingest->save_state(state);
    out.str(state.take());
  }
  return util::frame_with_digest(out.take());
}

ServeSnapshot parse_serve_snapshot(const std::string& blob) {
  const std::string payload = util::unframe_with_digest(blob, "serve snapshot");
  util::ByteReader in(payload);
  ServeSnapshot snap;
  const std::uint8_t mode = in.u8();
  require(mode <= static_cast<std::uint8_t>(FeedMode::kCan),
          "serve snapshot: unknown feed mode");
  snap.mode = static_cast<FeedMode>(mode);
  snap.session = in.str();
  if (snap.mode == FeedMode::kCan) snap.ingest_state = in.str();
  in.expect_done("serve snapshot");
  return snap;
}

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

SessionTable::SessionTable() : SessionTable(Options()) {}

SessionTable::SessionTable(Options options) {
  require(options.shards > 0 && options.max_sessions > 0,
          "SessionTable: shards and max_sessions must be positive");
  const std::size_t shards = round_up_pow2(options.shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  shard_bits_ = 0;
  while ((std::size_t{1} << shard_bits_) < shards) ++shard_bits_;
  per_shard_cap_ = std::max<std::size_t>(1, options.max_sessions / shards);
  ttl_ticks_ = options.ttl_ticks;
}

std::uint64_t SessionTable::insert(ServedSession session) {
  const std::size_t index =
      next_shard_.fetch_add(1, std::memory_order_relaxed) & (shards_.size() - 1);
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.entries.size() >= per_shard_cap_) {
    // Full: shed the shard's least-recently-used session.
    const std::uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    shard.entries.erase(victim);
    evicted_.fetch_add(1, std::memory_order_relaxed);
    record_reaped(victim);
  }
  const std::uint64_t sid = (shard.next_serial++ << shard_bits_) | index;
  shard.lru.push_front(sid);
  Entry entry{std::move(session), shard.lru.begin(),
              now_.load(std::memory_order_relaxed)};
  shard.entries.emplace(sid, std::move(entry));
  return sid;
}

bool SessionTable::erase(std::uint64_t sid) {
  Shard& shard = shard_of(sid);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(sid);
  if (it == shard.entries.end()) return false;
  shard.lru.erase(it->second.lru_pos);
  shard.entries.erase(it);
  record_reaped(sid);
  return true;
}

std::size_t SessionTable::tick() {
  const std::uint64_t now = now_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ttl_ticks_ == 0) return 0;
  std::size_t removed = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    // LRU order means the stalest sessions sit at the back; stop at the
    // first survivor.
    while (!shard.lru.empty()) {
      const std::uint64_t sid = shard.lru.back();
      const auto it = shard.entries.find(sid);
      if (now - it->second.last_tick <= ttl_ticks_) break;
      shard.lru.pop_back();
      shard.entries.erase(it);
      record_reaped(sid);
      ++removed;
    }
  }
  expired_.fetch_add(removed, std::memory_order_relaxed);
  return removed;
}

void SessionTable::insert_with_sid(std::uint64_t sid, ServedSession session) {
  const std::size_t index = sid & (shards_.size() - 1);
  const std::uint64_t serial = sid >> shard_bits_;
  require(sid != 0 && serial != 0,
          "SessionTable: cannot restore session id " + std::to_string(sid) +
              " (minted under a different shard count?)");
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  require(shard.entries.find(sid) == shard.entries.end(),
          "SessionTable: session id " + std::to_string(sid) +
              " already exists");
  if (shard.entries.size() >= per_shard_cap_) {
    const std::uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    shard.entries.erase(victim);
    evicted_.fetch_add(1, std::memory_order_relaxed);
    record_reaped(victim);
  }
  shard.next_serial = std::max(shard.next_serial, serial + 1);
  shard.lru.push_front(sid);
  Entry entry{std::move(session), shard.lru.begin(),
              now_.load(std::memory_order_relaxed)};
  shard.entries.emplace(sid, std::move(entry));
}

std::vector<std::uint64_t> SessionTable::ids() const {
  std::vector<std::uint64_t> out;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    for (const auto& [sid, entry] : shard_ptr->entries) out.push_back(sid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SessionTable::record_reaped(std::uint64_t sid) {
  if (!track_removals_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(reaped_mutex_);
  reaped_.push_back(sid);
}

std::vector<std::uint64_t> SessionTable::drain_reaped() {
  std::lock_guard<std::mutex> lock(reaped_mutex_);
  return std::exchange(reaped_, {});
}

std::size_t SessionTable::size() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    total += shard_ptr->entries.size();
  }
  return total;
}

}  // namespace cpsguard::serve
