// ingest.hpp — server-side sample ingestion: raw measurements in, residual
// samples out.
//
// A detection service rarely receives residuals: the edge devices ship raw
// sensor readings (or the CAN frames carrying them).  This module closes
// that gap with a ResidualObserver — a standalone replica of the closed
// loop's estimator/controller recursion that turns a measured output series
// y_1.. into exactly the residual series z_1.. the loop's recorder would
// have produced, bit for bit (it reproduces the step kernel's exact-mode
// accumulation order; pinned by tests/serve_test.cpp against recorded
// traces) — and a CanIngest that first decodes each sampling instant's
// frames through can::signal_codec, so the service consumes the very bytes
// the paper's MITM sits on.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "can/transport.hpp"
#include "control/closed_loop.hpp"
#include "linalg/matrix.hpp"
#include "util/bytes.hpp"

namespace cpsguard::serve {

/// Streaming estimator/controller replica.  Feed the measured outputs of a
/// loop (honest, noisy or attacked — anything that reaches the controller)
/// and read back the residuals its anomaly detectors see.  State is two
/// small vectors (x̂, u), so millions of observers stay cheap; save_state /
/// load_state round-trip them bit-exactly for session snapshots.
class ResidualObserver {
 public:
  explicit ResidualObserver(const control::LoopConfig& config);

  std::size_t output_dim() const { return c_.rows(); }

  /// Consumes one measured output sample and returns the residual z_k.
  /// The reference stays valid until the next observe()/reset().
  const linalg::Vector& observe(const linalg::Vector& y);

  void reset();
  void save_state(util::ByteWriter& out) const;
  void load_state(util::ByteReader& in);

 private:
  linalg::Matrix a_, b_, c_, d_, l_, k_;  // row-major, kernel layout
  linalg::Vector x_ss_, u_ss_, xhat1_, u1_;
  linalg::Vector xhat_, u_, z_, xhatn_;  // mutable recursion state
};

/// CAN-frame front end: decodes one sampling instant's frames (one frame
/// per bound message, any arrival order) into the measured output vector
/// and runs it through the ResidualObserver.  Unknown identifiers,
/// duplicate or missing messages and malformed frames throw
/// util::InvalidArgument without advancing the observer.
class CanIngest {
 public:
  CanIngest(const control::LoopConfig& config,
            std::vector<can::SensorMessageBinding> bindings);

  /// Frames one sampling instant must deliver (one per bound message).
  std::size_t messages_per_instant() const { return bindings_.size(); }
  std::size_t output_dim() const { return observer_.output_dim(); }

  /// Decodes + observes one instant; returns z_k (valid until next call).
  const linalg::Vector& ingest(const can::CanFrame* frames, std::size_t count);

  void reset() { observer_.reset(); }
  void save_state(util::ByteWriter& out) const { observer_.save_state(out); }
  void load_state(util::ByteReader& in) { observer_.load_state(in); }

 private:
  ResidualObserver observer_;
  std::vector<can::SensorMessageBinding> bindings_;
  linalg::Vector y_;                  // decode scratch
  std::vector<std::uint8_t> seen_;    // per-binding duplicate guard, reused
};

/// The CAN database bound to a case study's sensor path, when the study has
/// one (currently the VSC's yaw-rate / lateral-acceleration segment).
/// Returns an empty vector for studies without CAN bindings — CAN-mode
/// sessions on those scenarios are rejected at open time.
std::vector<can::SensorMessageBinding> can_bindings_for_study(
    const std::string& study_name);

}  // namespace cpsguard::serve
