#include "serve/load_generator.hpp"

#include <algorithm>
#include <chrono>

#include "detect/online.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace cpsguard::serve {

using util::require;

std::vector<double> session_stream(const detect::SessionBlueprint& blueprint,
                                   const LoadOptions& options,
                                   std::size_t session_index,
                                   std::size_t count) {
  util::Rng rng = util::Rng::substream(options.seed, session_index);
  const double peak = options.amplitude * blueprint.reference_level();
  std::vector<double> stream(count);
  for (double& v : stream) v = rng.uniform(0.0, peak);
  return stream;
}

std::vector<std::optional<std::size_t>> offline_first_alarms(
    const detect::SessionBlueprint& blueprint,
    const std::vector<double>& stream) {
  require(blueprint.single_norm(),
          "offline_first_alarms: blueprint must stream a single norm");
  detect::DetectorBank bank;
  for (std::size_t i = 0; i < blueprint.size(); ++i)
    bank.add(blueprint.instantiate(i));
  std::vector<std::optional<std::size_t>> first_alarms;
  bank.evaluate_norms(blueprint.norms(), {stream}, first_alarms);
  return first_alarms;
}

LoadStats run_local_load(
    SessionTable& table,
    std::shared_ptr<const detect::SessionBlueprint> blueprint,
    const LoadOptions& options) {
  require(options.sessions > 0 && options.samples > 0 && options.chunk > 0,
          "run_local_load: sessions, samples and chunk must be positive");
  using clock = std::chrono::steady_clock;

  std::vector<std::uint64_t> sids;
  sids.reserve(options.sessions);
  std::vector<std::vector<double>> streams;
  streams.reserve(options.sessions);
  for (std::size_t s = 0; s < options.sessions; ++s) {
    sids.push_back(table.insert(
        ServedSession{detect::Session(blueprint), FeedMode::kNorm, nullptr}));
    streams.push_back(session_stream(*blueprint, options, s, options.samples));
  }

  // Round-robin chunked feeding: every session advances `chunk` samples per
  // sweep, the access pattern a real multiplexing ingester produces.
  std::vector<double> chunk_micros;
  chunk_micros.reserve(options.sessions *
                       ((options.samples + options.chunk - 1) / options.chunk));
  const auto t0 = clock::now();
  for (std::size_t offset = 0; offset < options.samples;
       offset += options.chunk) {
    const std::size_t end = std::min(options.samples, offset + options.chunk);
    for (std::size_t s = 0; s < options.sessions; ++s) {
      const auto c0 = clock::now();
      const bool found = table.with(sids[s], [&](ServedSession& served) {
        for (std::size_t k = offset; k < end; ++k)
          served.session.feed_norm(streams[s][k]);
      });
      require(found, "run_local_load: session evicted mid-soak; raise "
                     "max_sessions above the generated session count");
      chunk_micros.push_back(
          std::chrono::duration<double, std::micro>(clock::now() - c0).count() /
          static_cast<double>(end - offset));
    }
  }
  const double seconds =
      std::chrono::duration<double>(clock::now() - t0).count();

  LoadStats stats;
  stats.sessions = options.sessions;
  stats.samples_total = options.sessions * options.samples;
  stats.seconds = seconds;
  for (const std::uint64_t sid : sids)
    table.with(sid, [&](ServedSession& served) {
      if (served.session.alarm_mask() != 0) ++stats.sessions_alarmed;
    });
  std::sort(chunk_micros.begin(), chunk_micros.end());
  const auto pct = [&](double q) {
    if (chunk_micros.empty()) return 0.0;
    const std::size_t idx = std::min(
        chunk_micros.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(chunk_micros.size())));
    return chunk_micros[idx];
  };
  stats.p50_feed_micros = pct(0.50);
  stats.p99_feed_micros = pct(0.99);
  return stats;
}

}  // namespace cpsguard::serve
