// vsc.hpp — Vehicle Stability Controller case study (paper Section IV).
//
// Single-track (bicycle) lateral dynamics after Aoki et al. / Zheng et al.
// with states x = [beta (sideslip angle), gamma (yaw rate)], corrective
// yaw-moment input, and the two CAN-borne (attackable) measurements of the
// paper: yaw rate (Yrs) and lateral acceleration (Ay).  Ts = 40 ms.
//
// The monitoring system uses the paper's constants verbatim:
//   allowedDiff (|gamma - gamma_est|)  0.035 rad/s
//   range of gamma                     0.2   rad/s
//   gradient of gamma                  0.175 rad/s^2
//   range of a_y                       15    m/s^2
//   gradient of a_y                    2     m/s^3
//   dead zone                          300 ms = 7 samples
// pfc: yaw rate within 80 % of the desired value within 50 samples.
#pragma once

#include "models/case_study.hpp"

namespace cpsguard::models {

/// Vehicle and experiment parameters (defaults follow Zheng et al. 2006).
struct VscParams {
  double mass = 1704.7;        ///< [kg]
  double inertia_z = 3048.1;   ///< yaw inertia [kg m^2]
  double lf = 1.035;           ///< CoG -> front axle [m]
  double lr = 1.655;           ///< CoG -> rear axle [m]
  double cf = 105000.0;        ///< front cornering stiffness [N/rad]
  double cr = 120000.0;        ///< rear cornering stiffness [N/rad]
  double speed = 20.0;         ///< longitudinal speed [m/s]
  double ts = 0.04;            ///< sampling period [s]

  double gamma_ref = 0.08;     ///< desired yaw rate [rad/s]
  std::size_t horizon = 50;    ///< T: pfc deadline in samples (2 s)

  // Monitoring constants (paper values).
  double allowed_diff = 0.035;     ///< [rad/s]
  double gamma_range = 0.2;        ///< [rad/s]
  double gamma_gradient = 0.175;   ///< [rad/s^2]
  double ay_range = 15.0;          ///< [m/s^2]
  double ay_gradient = 2.0;        ///< [m/s^3]
  std::size_t dead_zone = 7;       ///< samples (300 ms)

  linalg::Vector noise_bounds{0.002, 0.05};  ///< benign noise: gamma, a_y
  /// Sensor full-scale spoofing limits per channel (gamma, a_y): without an
  /// amplitude limit, the dead zone lets an attacker inject arbitrarily
  /// large 6-sample bursts between resets, making "maximum damage"
  /// unbounded.  These reflect plausible CAN signal ranges.
  linalg::Vector attack_bounds{0.4, 8.0};
};

/// Discretized single-track plant; outputs y = [gamma; a_y].
control::DiscreteLti vsc_plant(const VscParams& params = {});

/// The paper's monitoring system (range + gradient + relation, dead zone).
monitor::MonitorSet vsc_monitors(const VscParams& params = {});

/// Fully designed case study.
CaseStudy make_vsc_case_study(const VscParams& params = {});

}  // namespace cpsguard::models
