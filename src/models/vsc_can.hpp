// vsc_can.hpp — CAN database for the VSC case study's attacked sensors.
//
// The paper's threat model is a MITM on the CAN segment carrying the yaw
// rate (Yrs) and lateral acceleration (Ay) sensors.  These bindings give
// that segment a concrete DBC: signal scalings typical of production
// chassis messages, 16-bit signed fixed point, 500 kbit/s.  Experiments
// that route the VSC loop through can::CanLoopTransport exercise the exact
// quantize-pack-spoof-unpack path the paper's attacker sits on.
#pragma once

#include "can/transport.hpp"
#include "models/vsc.hpp"

namespace cpsguard::models {

/// Yaw-rate message (id 0x130): one 16-bit signed signal, 1e-4 rad/s per
/// bit (±3.27 rad/s full scale), bound to plant output 0 (gamma).
can::SensorMessageBinding vsc_yaw_rate_binding();

/// Lateral-acceleration message (id 0x131): one 16-bit signed signal,
/// 5e-4 m/s^2 per bit (±16.4 m/s^2 full scale), bound to output 1 (a_y).
can::SensorMessageBinding vsc_lateral_accel_binding();

/// Both sensor bindings, covering the VSC's outputs exactly.
std::vector<can::SensorMessageBinding> vsc_sensor_bindings();

/// The VSC closed loop routed over a 500 kbit/s CAN bus.
can::CanLoopTransport make_vsc_transport(const VscParams& params = {});

}  // namespace cpsguard::models
