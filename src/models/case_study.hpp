// case_study.hpp — bundled experiment setups.
//
// A CaseStudy carries everything the synthesis pipeline needs for one
// plant: the designed closed loop, the performance criterion pfc, the
// pre-existing monitoring system mdc, the analysis horizon and the noise
// envelope used by the Monte-Carlo FAR protocol.
#pragma once

#include <optional>
#include <string>

#include "control/closed_loop.hpp"
#include "linalg/matrix.hpp"
#include "monitor/monitor.hpp"
#include "synth/attack_synth.hpp"
#include "synth/spec.hpp"

namespace cpsguard::models {

struct CaseStudy {
  std::string name;
  control::LoopConfig loop;
  // Placeholder default (unit tolerance band on state 0) keeps CaseStudy
  // default-constructible — scenario::ScenarioSpec holds one by value;
  // every bundled factory overrides it.
  synth::ReachCriterion pfc{0, 0.0, 1.0};
  monitor::MonitorSet mdc;
  std::size_t horizon = 0;
  control::Norm norm = control::Norm::kInf;
  /// Per-output bound of the benign measurement noise (FAR protocol).
  linalg::Vector noise_bounds;
  /// Optional attacker power bound fed to Algorithm 1.
  std::optional<double> attack_bound;
  /// Optional per-channel bounds (sensor full-scale ranges).
  std::optional<linalg::Vector> attack_bounds;

  /// Assembles the Algorithm-1 problem for this case study.
  synth::AttackProblem attack_problem() const;
};

}  // namespace cpsguard::models
