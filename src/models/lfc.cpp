#include "models/lfc.hpp"

namespace cpsguard::models {

using control::ContinuousLti;
using control::DiscreteLti;
using linalg::Matrix;
using linalg::Vector;

DiscreteLti lfc_plant(const LfcParams& p) {
  ContinuousLti ct;
  ct.a = Matrix{{-p.damping / p.inertia, 1.0 / p.inertia, 0.0},
                {0.0, -1.0 / p.turbine_tc, 1.0 / p.turbine_tc},
                {-1.0 / (p.droop * p.governor_tc), 0.0, -1.0 / p.governor_tc}};
  ct.b = Matrix{{0.0}, {0.0}, {1.0 / p.governor_tc}};
  ct.c = Matrix{{1.0, 0.0, 0.0}};  // frequency-deviation measurement
  ct.d = Matrix{{0.0}};

  DiscreteLti plant = control::c2d(ct, p.ts);
  plant.q = 1e-7 * Matrix::identity(3);
  plant.r = Matrix{{1.6e-5}};  // (4e-3)^2: Δf sensor noise variance
  return plant;
}

CaseStudy make_lfc_case_study(const LfcParams& p) {
  const DiscreteLti plant = lfc_plant(p);

  control::LoopConfig loop = control::LoopConfig::design(
      plant,
      /*state_cost=*/Matrix::diagonal(Vector{400.0, 1.0, 1.0}),
      /*input_cost=*/Matrix{{0.5}},
      /*reference=*/Vector{0.0});
  // Scenario: the area has just absorbed a load step — the frequency sags
  // by `load_step` (in Hz here; the pu->Hz scaling is folded into the
  // parameter) and the loop must restore it into the tolerance band.  The
  // estimator starts at the sagged state too (SCADA telemetry is live).
  loop.x1 = Vector{-p.load_step, 0.0, 0.0};
  loop.xhat1 = loop.x1;

  monitor::MonitorSet mdc;
  mdc.add(std::make_unique<monitor::RangeMonitor>(0, p.freq_range, "freq"));
  mdc.add(std::make_unique<monitor::GradientMonitor>(0, p.freq_gradient, "freq"));
  mdc.set_dead_zone(p.dead_zone);

  CaseStudy cs{
      "lfc",
      loop,
      synth::ReachCriterion(/*state_index=*/0, /*target=*/0.0, p.tolerance),
      std::move(mdc),
      p.horizon,
      control::Norm::kInf,
      Vector{p.noise_bound},
      p.attack_bound};
  return cs;
}

}  // namespace cpsguard::models
