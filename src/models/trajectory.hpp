// trajectory.hpp — trajectory-tracking system (paper Fig. 1).
//
// The motivational example of the paper (after Kerns et al.'s GPS-spoofed
// UAV): a deviation-tracking loop that must regulate the position deviation
// to zero.  We model it as a sampled double integrator
//   pos' = vel,  vel' = u
// sampled at Ts = 0.1 s with the position deviation measured.  An attacker
// who injects small sensor offsets late in the transient can keep the loop
// away from the reference while the residue stays tiny — the effect the
// variable threshold is designed to catch.
#pragma once

#include "models/case_study.hpp"

namespace cpsguard::models {

/// Model constants for the trajectory tracker.
struct TrajectoryParams {
  double ts = 0.1;                ///< sampling period [s]
  double natural_freq = 2.0;      ///< inner-loop natural frequency [rad/s]
  double damping = 0.7;           ///< inner-loop damping ratio
  double initial_deviation = 0.4; ///< starting position deviation [m]
  double tolerance = 0.05;        ///< pfc band around zero deviation [m]
  std::size_t horizon = 10;       ///< T (1 second, matching Fig. 1's axis)
  double noise_bound = 0.01;      ///< benign measurement noise bound [m]
  /// Attacker power: largest spoofed position offset per sample [m].  The
  /// trajectory example has no plausibility monitors, so an unbounded
  /// attacker is degenerate (arbitrarily large residues); GPS-spoofing
  /// offsets of this size match the deviations of the paper's Fig. 1.
  double attack_bound = 0.3;
};

/// Discrete double-integrator plant with position measurement.
control::DiscreteLti trajectory_plant(const TrajectoryParams& params = {});

/// Fully designed case study (LQG loop, pfc, empty mdc).
CaseStudy make_trajectory_case_study(const TrajectoryParams& params = {});

}  // namespace cpsguard::models
