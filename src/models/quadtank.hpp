// quadtank.hpp — quadruple-tank process benchmark (Johansson 2000).
//
// The only bundled MIMO plant (2 pump inputs, 2 level measurements,
// 4 states): exercises the library's multi-input paths (LQR/Kalman with
// p > 1, vector operating points) and gives the test suite a slow
// chemical-process dynamics contrast to the fast automotive models.
#pragma once

#include "models/case_study.hpp"

namespace cpsguard::models {

struct QuadTankParams {
  // Tank cross-sections [cm^2] and outlet areas [cm^2] (Johansson's values).
  double area1 = 28.0, area2 = 32.0, area3 = 28.0, area4 = 32.0;
  double outlet1 = 0.071, outlet2 = 0.057, outlet3 = 0.071, outlet4 = 0.057;
  double k1 = 3.33, k2 = 3.35;     ///< pump gains [cm^3/(V s)]
  double split1 = 0.7, split2 = 0.6;  ///< valve splits (minimum-phase setting)
  double gravity = 981.0;          ///< [cm/s^2]
  double level1 = 12.4, level2 = 12.7, level3 = 1.8, level4 = 1.4;  ///< lin. point [cm]
  double ts = 3.0;                 ///< sampling period [s] (slow process)

  double target1 = 1.0;            ///< desired lower-tank-1 level deviation [cm]
  double tolerance = 0.25;         ///< pfc band [cm]
  std::size_t horizon = 40;        ///< 2 minutes
  linalg::Vector noise_bounds{0.05, 0.05};  ///< level sensor noise [cm]
};

/// Linearized discrete model; states are level deviations of tanks 1-4,
/// outputs are the two lower-tank levels.
control::DiscreteLti quadtank_plant(const QuadTankParams& params = {});

/// Case study: drive tank 1 to a new level; range monitors on both level
/// sensors form the (weak) pre-existing monitoring system.
CaseStudy make_quadtank_case_study(const QuadTankParams& params = {});

}  // namespace cpsguard::models
