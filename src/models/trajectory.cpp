#include "models/trajectory.hpp"

#include "control/kalman.hpp"
#include "control/lqr.hpp"

namespace cpsguard::models {

using control::ContinuousLti;
using control::DiscreteLti;
using linalg::Matrix;
using linalg::Vector;

DiscreteLti trajectory_plant(const TrajectoryParams& params) {
  ContinuousLti ct;
  const double w = params.natural_freq, z = params.damping;
  ct.a = Matrix{{0.0, 1.0}, {-w * w, -2.0 * z * w}};
  ct.b = Matrix{{0.0}, {1.0}};
  ct.c = Matrix{{1.0, 0.0}};
  ct.d = Matrix{{0.0}};
  DiscreteLti plant = control::c2d(ct, params.ts);
  plant.q = Matrix{{1e-3, 0.0}, {0.0, 1e-3}};  // brisk filter: the estimator must track x1 != xhat1
  plant.r = Matrix{{2.5e-5}};  // sigma ~ 5 mm position noise
  return plant;
}

CaseStudy make_trajectory_case_study(const TrajectoryParams& params) {
  const DiscreteLti plant = trajectory_plant(params);

  control::LoopConfig loop = control::LoopConfig::design(
      plant,
      /*state_cost=*/Matrix{{400.0, 0.0}, {0.0, 40.0}},
      /*input_cost=*/Matrix{{0.2}},
      /*reference=*/Vector{0.0});
  loop.x1 = Vector{params.initial_deviation, 0.0};
  // The deviation at the triggering event is known to the estimator; benign
  // residues are then noise-sized from the start (paper Fig. 1b).
  loop.xhat1 = loop.x1;

  CaseStudy cs{
      "trajectory-tracking",
      loop,
      synth::ReachCriterion(/*state_index=*/0, /*target=*/0.0, params.tolerance),
      monitor::MonitorSet{},  // Fig. 1 has no pre-existing monitoring system
      params.horizon,
      control::Norm::kInf,
      Vector{params.noise_bound},
      params.attack_bound};
  return cs;
}

}  // namespace cpsguard::models
