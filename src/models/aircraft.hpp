// aircraft.hpp — aircraft pitch-control benchmark.
//
// The paper's motivational attack (Kerns et al.) is GPS spoofing of a UAV;
// this case study is the complementary avionics loop: the classic
// linearized longitudinal pitch dynamics of a transport aircraft (the
// standard Boeing 747-style numbers used in controls curricula), with the
// pitch angle measured by a spoofable attitude source.  Three states, slow
// dominant mode, and a pfc horizon much longer than the sampling period —
// a different corner of the synthesis problem space than the VSC (fast,
// two attacked outputs) or the LFC (stiff governor pole).
//
//   x = [alpha (angle of attack, rad), q (pitch rate, rad/s),
//        theta (pitch angle, rad)],  u = elevator deflection [rad]
#pragma once

#include "models/case_study.hpp"

namespace cpsguard::models {

struct AircraftPitchParams {
  double ts = 0.1;             ///< sampling period [s]
  double theta_ref = 0.2;      ///< commanded pitch angle [rad]
  double tolerance = 0.02;     ///< pfc band [rad]
  std::size_t horizon = 60;    ///< T: 6 s to capture the commanded pitch
  double noise_bound = 0.002;  ///< attitude-sensor noise bound [rad]
  /// Monitoring constants (attitude plausibility relay).
  double theta_range = 0.6;      ///< |theta| limit [rad]
  double theta_gradient = 0.35;  ///< |dtheta/dt| limit [rad/s]
  std::size_t dead_zone = 5;     ///< samples
  /// Spoof amplitude limit per sample [rad].
  double attack_bound = 0.15;
};

/// Discretized pitch dynamics; output y = theta.
control::DiscreteLti aircraft_pitch_plant(const AircraftPitchParams& params = {});

/// Fully designed case study (pitch-capture manoeuvre).
CaseStudy make_aircraft_pitch_case_study(const AircraftPitchParams& params = {});

}  // namespace cpsguard::models
