// lfc.hpp — single-area power-grid load-frequency control benchmark.
//
// The FDI-attack literature the paper builds on (Liu et al., Sandberg
// et al., Mo & Sinopoli) is rooted in power grids: frequency and tie-line
// measurements travel over SCADA links an attacker can falsify.  This case
// study is the canonical single-area LFC loop — governor, turbine, and
// rotor-inertia dynamics with a frequency-deviation measurement — so the
// synthesis pipeline is exercised on the paper's second motivating domain
// next to the automotive VSC.
//
//   x = [Δf (frequency deviation, Hz), P_m (mechanical power, pu),
//        P_v (governor valve position, pu)]
//   Δf' = (P_m - P_load - D·Δf) / (2H)
//   P_m' = (P_v - P_m) / T_t
//   P_v' = (u - P_v - Δf / R) / T_g
//
// The attacked measurement is Δf; pfc requires the frequency to recover
// into a band around zero after a load step.  A range+gradient monitoring
// system with a dead zone mirrors typical under/over-frequency relays.
#pragma once

#include "models/case_study.hpp"

namespace cpsguard::models {

struct LfcParams {
  double inertia = 5.0;        ///< 2H [s·pu]: rotating inertia constant
  double damping = 1.0;        ///< D [pu/Hz]: load frequency sensitivity
  double turbine_tc = 0.5;     ///< T_t [s]
  double governor_tc = 0.2;    ///< T_g [s]
  double droop = 0.05;         ///< R [Hz/pu]: speed droop
  double ts = 0.1;             ///< sampling period [s]

  double load_step = 0.1;      ///< initial load disturbance [pu]
  double tolerance = 0.02;     ///< pfc band on Δf [Hz]
  std::size_t horizon = 40;    ///< T: 4 s to recover
  double noise_bound = 0.004;  ///< benign Δf measurement noise [Hz]
  /// Frequency-relay style monitoring constants.
  double freq_range = 0.5;     ///< |Δf| limit [Hz]
  double freq_gradient = 2.0;  ///< |dΔf/dt| limit [Hz/s]
  std::size_t dead_zone = 4;   ///< samples
  /// SCADA-side spoof amplitude limit per sample [Hz].
  double attack_bound = 0.25;
};

/// Discretized single-area LFC plant; output y = Δf.
control::DiscreteLti lfc_plant(const LfcParams& params = {});

/// Fully designed case study (load-step initial condition, relay-style
/// monitors, pfc: |Δf| back within tolerance at the horizon).
CaseStudy make_lfc_case_study(const LfcParams& params = {});

}  // namespace cpsguard::models
