#include "models/quadtank.hpp"

#include <cmath>

namespace cpsguard::models {

using control::ContinuousLti;
using control::DiscreteLti;
using linalg::Matrix;
using linalg::Vector;

DiscreteLti quadtank_plant(const QuadTankParams& p) {
  // Linearization time constants T_i = (A_i / a_i) sqrt(2 h_i / g).
  auto tc = [&](double area, double outlet, double level) {
    return (area / outlet) * std::sqrt(2.0 * level / p.gravity);
  };
  const double t1 = tc(p.area1, p.outlet1, p.level1);
  const double t2 = tc(p.area2, p.outlet2, p.level2);
  const double t3 = tc(p.area3, p.outlet3, p.level3);
  const double t4 = tc(p.area4, p.outlet4, p.level4);

  ContinuousLti ct;
  ct.a = Matrix{{-1.0 / t1, 0.0, p.area3 / (p.area1 * t3), 0.0},
                {0.0, -1.0 / t2, 0.0, p.area4 / (p.area2 * t4)},
                {0.0, 0.0, -1.0 / t3, 0.0},
                {0.0, 0.0, 0.0, -1.0 / t4}};
  ct.b = Matrix{{p.split1 * p.k1 / p.area1, 0.0},
                {0.0, p.split2 * p.k2 / p.area2},
                {0.0, (1.0 - p.split2) * p.k2 / p.area3},
                {(1.0 - p.split1) * p.k1 / p.area4, 0.0}};
  ct.c = Matrix{{1.0, 0.0, 0.0, 0.0},
                {0.0, 1.0, 0.0, 0.0}};
  ct.d = Matrix{{0.0, 0.0}, {0.0, 0.0}};

  DiscreteLti plant = control::c2d(ct, p.ts);
  plant.q = 1e-5 * Matrix::identity(4);
  plant.r = Matrix{{2.5e-4, 0.0}, {0.0, 2.5e-4}};
  return plant;
}

CaseStudy make_quadtank_case_study(const QuadTankParams& p) {
  const DiscreteLti plant = quadtank_plant(p);

  control::LoopConfig loop = control::LoopConfig::design(
      plant,
      /*state_cost=*/Matrix::diagonal(Vector{50.0, 10.0, 1.0, 1.0}),
      /*input_cost=*/Matrix::diagonal(Vector{0.5, 0.5}),
      /*reference=*/Vector{p.target1, 0.0});

  monitor::MonitorSet mdc;
  mdc.add(std::make_unique<monitor::RangeMonitor>(0, 3.0, "tank1 level dev"));
  mdc.add(std::make_unique<monitor::RangeMonitor>(1, 3.0, "tank2 level dev"));
  mdc.set_dead_zone(3);

  CaseStudy cs{
      "quadruple-tank",
      loop,
      synth::ReachCriterion(/*state_index=*/0, /*target=*/p.target1, p.tolerance),
      std::move(mdc),
      p.horizon,
      control::Norm::kInf,
      p.noise_bounds,
      std::nullopt,
      linalg::Vector{2.0, 2.0}};  // level spoof limit [cm]
  return cs;
}

}  // namespace cpsguard::models
