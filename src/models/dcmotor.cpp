#include "models/dcmotor.hpp"

namespace cpsguard::models {

using control::ContinuousLti;
using control::DiscreteLti;
using linalg::Matrix;
using linalg::Vector;

DiscreteLti dcmotor_plant(const DcMotorParams& p) {
  // x = [i (armature current), w (angular velocity)], u = voltage.
  ContinuousLti ct;
  ct.a = Matrix{{-p.resistance / p.inductance, -p.torque_const / p.inductance},
                {p.torque_const / p.inertia, -p.friction / p.inertia}};
  ct.b = Matrix{{1.0 / p.inductance}, {0.0}};
  ct.c = Matrix{{0.0, 1.0}};  // speed sensor only
  ct.d = Matrix{{0.0}};

  DiscreteLti plant = control::c2d(ct, p.ts);
  plant.q = Matrix{{1e-6, 0.0}, {0.0, 1e-6}};
  plant.r = Matrix{{1e-4}};
  return plant;
}

CaseStudy make_dcmotor_case_study(const DcMotorParams& p) {
  const DiscreteLti plant = dcmotor_plant(p);

  control::LoopConfig loop = control::LoopConfig::design(
      plant,
      /*state_cost=*/Matrix{{0.1, 0.0}, {0.0, 50.0}},
      /*input_cost=*/Matrix{{0.5}},
      /*reference=*/Vector{p.speed_ref});

  monitor::MonitorSet mdc;
  mdc.add(std::make_unique<monitor::RangeMonitor>(0, 2.0 * p.speed_ref, "speed"));
  mdc.add(std::make_unique<monitor::GradientMonitor>(0, 4.0 * p.speed_ref, "speed"));
  mdc.set_dead_zone(3);

  CaseStudy cs{
      "dc-motor",
      loop,
      synth::ReachCriterion(/*state_index=*/1, /*target=*/p.speed_ref, p.tolerance),
      std::move(mdc),
      p.horizon,
      control::Norm::kInf,
      Vector{p.noise_bound},
      std::nullopt};
  return cs;
}

}  // namespace cpsguard::models
