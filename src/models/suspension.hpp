// suspension.hpp — quarter-car active suspension benchmark.
//
// A four-state plant (sprung/unsprung mass positions and velocities) with
// two measurements; exercises the library on a larger state space than the
// two-state case studies and appears in the scaling ablation.
#pragma once

#include "models/case_study.hpp"

namespace cpsguard::models {

struct SuspensionParams {
  double sprung_mass = 300.0;     ///< quarter body mass [kg]
  double unsprung_mass = 40.0;    ///< wheel assembly mass [kg]
  double spring = 15000.0;        ///< suspension stiffness [N/m]
  double damper = 1000.0;         ///< suspension damping [N s/m]
  double tire_spring = 150000.0;  ///< tire stiffness [N/m]
  double ts = 0.01;               ///< sampling period [s]

  double tolerance = 0.01;        ///< pfc band on body travel [m]
  std::size_t horizon = 40;
  linalg::Vector noise_bounds{0.0005, 0.005};
};

control::DiscreteLti suspension_plant(const SuspensionParams& params = {});

/// Case study: regulate body travel to zero from an initial disturbance.
CaseStudy make_suspension_case_study(const SuspensionParams& params = {});

}  // namespace cpsguard::models
