#include "models/vsc_can.hpp"

namespace cpsguard::models {

using can::ByteOrder;
using can::MessageSpec;
using can::SensorMessageBinding;
using can::SignalSpec;

SensorMessageBinding vsc_yaw_rate_binding() {
  SignalSpec yaw;
  yaw.name = "YawRate";
  yaw.start_bit = 0;
  yaw.length = 16;
  yaw.byte_order = ByteOrder::kLittleEndian;
  yaw.is_signed = true;
  yaw.scale = 1e-4;  // rad/s per bit

  MessageSpec msg;
  msg.name = "YRS_01";
  msg.id = 0x130;
  msg.dlc = 8;
  msg.signals = {yaw};

  return SensorMessageBinding{msg, {0}};
}

SensorMessageBinding vsc_lateral_accel_binding() {
  SignalSpec ay;
  ay.name = "LateralAccel";
  ay.start_bit = 7;  // Motorola MSB of byte 0
  ay.length = 16;
  ay.byte_order = ByteOrder::kBigEndian;
  ay.is_signed = true;
  ay.scale = 5e-4;  // m/s^2 per bit

  MessageSpec msg;
  msg.name = "AY_01";
  msg.id = 0x131;
  msg.dlc = 8;
  msg.signals = {ay};

  return SensorMessageBinding{msg, {1}};
}

std::vector<SensorMessageBinding> vsc_sensor_bindings() {
  return {vsc_yaw_rate_binding(), vsc_lateral_accel_binding()};
}

can::CanLoopTransport make_vsc_transport(const VscParams& params) {
  const CaseStudy cs = make_vsc_case_study(params);
  return can::CanLoopTransport(cs.loop, vsc_sensor_bindings(),
                               can::Bus(500000.0));
}

}  // namespace cpsguard::models
