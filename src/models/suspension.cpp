#include "models/suspension.hpp"

namespace cpsguard::models {

using control::ContinuousLti;
using control::DiscreteLti;
using linalg::Matrix;
using linalg::Vector;

DiscreteLti suspension_plant(const SuspensionParams& p) {
  // x = [zs, zs', zu, zu'] (body travel/velocity, wheel travel/velocity),
  // u = actuator force between the masses.
  const double ms = p.sprung_mass, mu = p.unsprung_mass;
  const double ks = p.spring, bs = p.damper, kt = p.tire_spring;
  ContinuousLti ct;
  ct.a = Matrix{{0.0, 1.0, 0.0, 0.0},
                {-ks / ms, -bs / ms, ks / ms, bs / ms},
                {0.0, 0.0, 0.0, 1.0},
                {ks / mu, bs / mu, -(ks + kt) / mu, -bs / mu}};
  ct.b = Matrix{{0.0}, {1.0 / ms}, {0.0}, {-1.0 / mu}};
  // Measurements: body travel and suspension deflection.
  ct.c = Matrix{{1.0, 0.0, 0.0, 0.0},
                {1.0, 0.0, -1.0, 0.0}};
  ct.d = Matrix{{0.0}, {0.0}};

  DiscreteLti plant = control::c2d(ct, p.ts);
  plant.q = 1e-8 * Matrix::identity(4);
  plant.r = Matrix{{2.5e-7, 0.0}, {0.0, 2.5e-5}};
  return plant;
}

CaseStudy make_suspension_case_study(const SuspensionParams& p) {
  const DiscreteLti plant = suspension_plant(p);

  control::LoopConfig loop = control::LoopConfig::design(
      plant,
      /*state_cost=*/Matrix::diagonal(Vector{5e5, 10.0, 1e3, 1.0}),
      /*input_cost=*/Matrix{{1e-6}},
      /*reference=*/Vector{0.0},
      /*tracked_outputs=*/{0});
  loop.x1 = Vector{0.05, 0.0, 0.0, 0.0};  // 5 cm initial body displacement

  monitor::MonitorSet mdc;
  mdc.add(std::make_unique<monitor::RangeMonitor>(0, 0.12, "body travel"));
  mdc.add(std::make_unique<monitor::RangeMonitor>(1, 0.15, "deflection"));
  mdc.set_dead_zone(4);

  CaseStudy cs{
      "suspension",
      loop,
      synth::ReachCriterion(/*state_index=*/0, /*target=*/0.0, p.tolerance),
      std::move(mdc),
      p.horizon,
      control::Norm::kInf,
      p.noise_bounds,
      std::nullopt};
  return cs;
}

}  // namespace cpsguard::models
