#include "models/vsc.hpp"

#include "control/kalman.hpp"
#include "control/lqr.hpp"

namespace cpsguard::models {

using control::ContinuousLti;
using control::DiscreteLti;
using linalg::Matrix;
using linalg::Vector;

DiscreteLti vsc_plant(const VscParams& p) {
  const double mv = p.mass * p.speed;
  const double a11 = -(p.cf + p.cr) / mv;
  const double a12 = -1.0 + (p.cr * p.lr - p.cf * p.lf) / (mv * p.speed);
  const double a21 = (p.cr * p.lr - p.cf * p.lf) / p.inertia_z;
  const double a22 = -(p.cf * p.lf * p.lf + p.cr * p.lr * p.lr) / (p.inertia_z * p.speed);

  ContinuousLti ct;
  ct.a = Matrix{{a11, a12}, {a21, a22}};
  // Input: corrective yaw moment from the hydraulic unit.
  ct.b = Matrix{{0.0}, {1.0 / p.inertia_z}};
  // Outputs: gamma, and a_y = v*(beta' + gamma) = v*a11*beta + v*(a12+1)*gamma.
  ct.c = Matrix{{0.0, 1.0},
                {p.speed * a11, p.speed * (a12 + 1.0)}};
  ct.d = Matrix{{0.0}, {0.0}};

  DiscreteLti plant = control::c2d(ct, p.ts);
  plant.q = Matrix{{2e-5, 0.0}, {0.0, 2e-5}};  // keeps the Kalman gain meaningful
  plant.r = Matrix{{1e-6, 0.0}, {0.0, 2.5e-4}};  // sigma: 1e-3 rad/s, 1.6e-2 m/s^2
  return plant;
}

monitor::MonitorSet vsc_monitors(const VscParams& p) {
  monitor::MonitorSet mdc;
  mdc.add(std::make_unique<monitor::RangeMonitor>(0, p.gamma_range, "gamma"));
  mdc.add(std::make_unique<monitor::GradientMonitor>(0, p.gamma_gradient, "gamma"));
  mdc.add(std::make_unique<monitor::RangeMonitor>(1, p.ay_range, "a_y"));
  mdc.add(std::make_unique<monitor::GradientMonitor>(1, p.ay_gradient, "a_y"));
  // gamma_est = a_y / v; monitored: |gamma - a_y / v| <= allowedDiff.
  mdc.add(std::make_unique<monitor::RelationMonitor>(
      Vector{1.0, -1.0 / p.speed}, 0.0, p.allowed_diff, "gamma vs gamma_est"));
  mdc.set_dead_zone(p.dead_zone);
  return mdc;
}

CaseStudy make_vsc_case_study(const VscParams& p) {
  const DiscreteLti plant = vsc_plant(p);

  // Track the yaw-rate output only.  The transient must clear the gradient
  // monitors' dead zone: a BRISK response keeps the over-limit burst shorter
  // than 7 samples (a sluggish one drags it past the dead zone), and the
  // maneuver size (gamma_ref) bounds how long a_y keeps slewing.
  control::LoopConfig loop = control::LoopConfig::design(
      plant,
      /*state_cost=*/Matrix{{1.0, 0.0}, {0.0, 5000.0}},
      /*input_cost=*/Matrix{{2e-8}},
      /*reference=*/Vector{p.gamma_ref},
      /*tracked_outputs=*/{0});

  // pfc: yaw rate within 80 % of the desired value at the deadline.
  const double tolerance = 0.2 * p.gamma_ref;

  CaseStudy cs{
      "vsc",
      loop,
      synth::ReachCriterion(/*state_index=*/1, /*target=*/p.gamma_ref, tolerance),
      vsc_monitors(p),
      p.horizon,
      control::Norm::kInf,
      p.noise_bounds,
      std::nullopt,
      p.attack_bounds};
  return cs;
}

}  // namespace cpsguard::models
