#include "models/aircraft.hpp"

namespace cpsguard::models {

using control::ContinuousLti;
using control::DiscreteLti;
using linalg::Matrix;
using linalg::Vector;

DiscreteLti aircraft_pitch_plant(const AircraftPitchParams& p) {
  // Standard linearized longitudinal short-period + pitch-integration model
  // (cruise trim; see e.g. the CTMS pitch-control example).
  ContinuousLti ct;
  ct.a = Matrix{{-0.313, 56.7, 0.0},
                {-0.0139, -0.426, 0.0},
                {0.0, 56.7, 0.0}};
  ct.b = Matrix{{0.232}, {0.0203}, {0.0}};
  ct.c = Matrix{{0.0, 0.0, 1.0}};  // pitch-angle (attitude) measurement
  ct.d = Matrix{{0.0}};

  DiscreteLti plant = control::c2d(ct, p.ts);
  plant.q = 1e-7 * Matrix::identity(3);
  plant.r = Matrix{{4e-6}};  // (2e-3)^2: attitude noise variance
  return plant;
}

CaseStudy make_aircraft_pitch_case_study(const AircraftPitchParams& p) {
  const DiscreteLti plant = aircraft_pitch_plant(p);

  control::LoopConfig loop = control::LoopConfig::design(
      plant,
      /*state_cost=*/Matrix::diagonal(Vector{1.0, 1.0, 150.0}),
      /*input_cost=*/Matrix{{1.0}},
      /*reference=*/Vector{p.theta_ref});

  monitor::MonitorSet mdc;
  mdc.add(std::make_unique<monitor::RangeMonitor>(0, p.theta_range, "theta"));
  mdc.add(std::make_unique<monitor::GradientMonitor>(0, p.theta_gradient, "theta"));
  mdc.set_dead_zone(p.dead_zone);

  CaseStudy cs{
      "aircraft-pitch",
      loop,
      synth::ReachCriterion(/*state_index=*/2, /*target=*/p.theta_ref, p.tolerance),
      std::move(mdc),
      p.horizon,
      control::Norm::kInf,
      Vector{p.noise_bound},
      p.attack_bound};
  return cs;
}

}  // namespace cpsguard::models
