// dcmotor.hpp — DC-motor speed-control benchmark.
//
// A classic two-state servo (armature current, angular velocity) used by
// the test suite and ablation benches as a third, structurally different
// plant: single input, single attacked measurement, fast electrical pole.
#pragma once

#include "models/case_study.hpp"

namespace cpsguard::models {

struct DcMotorParams {
  double resistance = 1.0;     ///< armature resistance [Ohm]
  double inductance = 0.5;     ///< armature inductance [H]
  double torque_const = 0.01;  ///< torque/back-EMF constant [N m/A]
  double inertia = 0.01;       ///< rotor inertia [kg m^2]
  double friction = 0.1;       ///< viscous friction [N m s]
  double ts = 0.05;            ///< sampling period [s]

  double speed_ref = 1.0;      ///< desired angular velocity [rad/s]
  double tolerance = 0.1;      ///< pfc band [rad/s]
  std::size_t horizon = 40;
  double noise_bound = 0.01;   ///< benign speed-sensor noise [rad/s]
};

control::DiscreteLti dcmotor_plant(const DcMotorParams& params = {});

/// Case study with a light range+gradient monitoring system on the speed
/// measurement (no relation monitor: single sensor).
CaseStudy make_dcmotor_case_study(const DcMotorParams& params = {});

}  // namespace cpsguard::models
