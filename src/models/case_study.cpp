#include "models/case_study.hpp"

namespace cpsguard::models {

synth::AttackProblem CaseStudy::attack_problem() const {
  return synth::AttackProblem{.loop = loop,
                              .pfc = pfc,
                              .mdc = mdc,
                              .horizon = horizon,
                              .norm = norm,
                              .init = {},
                              .attack_bound = attack_bound,
                              .attack_bounds = attack_bounds};
}

}  // namespace cpsguard::models
