// attacker_capability.cpp — how much damage can a stealthy attacker do?
//
// Reachability view of threshold design: reparametrizing a stealthy attack
// as a threshold-bounded disturbance (see src/reach/stealthy.hpp) turns
// "worst stealthy deviation" into a zonotope propagation that answers in
// microseconds.  This example
//   1. sweeps a static threshold level and plots the attacker's deviation
//      envelope against the pfc band — the crossover is the largest
//      provably safe static threshold (up to over-approximation),
//   2. compares the envelope of a synthesized decreasing vector with the
//      static one of equal FAR-relevant late-phase level,
//   3. cross-checks the certificate against template attacks.
//
//   ./examples/attacker_capability
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  util::set_log_level(util::LogLevel::kWarn);

  const models::CaseStudy cs = models::make_trajectory_case_study();
  const synth::ReachCriterion pfc(0, 0.0, 0.05);
  const std::size_t T = cs.horizon;

  // --- 1. capability sweep over static threshold levels ----------------------
  std::printf("%-12s %-18s %-10s\n", "threshold", "max |deviation|", "certified");
  std::printf("%-12s %-18s %-10s\n", "---------", "---------------", "---------");
  double largest_safe = 0.0;
  for (double th : {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    const detect::ThresholdVector vec = detect::ThresholdVector::constant(T, th);
    const double dev = reach::max_stealthy_deviation(cs.loop, 0, 0.0, vec, T);
    const bool safe = reach::certify_no_stealthy_violation(cs.loop, pfc, vec, T);
    if (safe) largest_safe = th;
    std::printf("%-12.3f %-18.4f %-10s\n", th, dev, safe ? "SAFE" : "unknown");
  }
  std::printf("\nlargest certified-safe static level in the sweep: %.3f\n\n",
              largest_safe);

  // --- 2. decreasing vector vs static at the same late level ------------------
  detect::ThresholdVector decreasing(T);
  for (std::size_t k = 0; k < T; ++k) {
    const double frac = static_cast<double>(k) / static_cast<double>(T - 1);
    decreasing.set(k, 4.0 * largest_safe * (1.0 - frac) + largest_safe * frac);
  }
  const bool dec_safe =
      reach::certify_no_stealthy_violation(cs.loop, pfc, decreasing, T);
  std::printf("decreasing vector (4x early, 1x late): %s\n",
              dec_safe ? "certified safe — looser early thresholds cost no "
                         "safety (the estimator transient dominates early "
                         "residues anyway)"
                       : "not certifiable by the envelope (needs Algorithm 1)");

  // --- 3. cross-check with template attacks ----------------------------------
  const control::ClosedLoop loop(cs.loop);
  const detect::ResidueDetector detector(
      detect::ThresholdVector::constant(T, largest_safe), cs.norm);
  const auto results = attacks::search_templates(
      loop, synth::Criterion(pfc), cs.mdc, &detector, T,
      attacks::standard_library(1, T));
  std::printf("\ntemplate attacks against the certified static level:\n");
  for (const auto& r : results) {
    if (!r.min_violating_magnitude) {
      std::printf("  %-10s cannot violate pfc at any magnitude tried\n",
                  r.name.c_str());
      continue;
    }
    std::printf("  %-10s needs magnitude %.3f to break pfc -> detector %s\n",
                r.name.c_str(), *r.min_violating_magnitude,
                r.caught_by_detector ? "ALARMS (as certified)" : "silent (BUG)");
    if (!r.caught_by_detector) return 1;  // would contradict the certificate
  }
  return 0;
}
