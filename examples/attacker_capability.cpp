// attacker_capability.cpp — how much damage can a stealthy attacker do?
//
// Reachability view of threshold design: reparametrizing a stealthy attack
// as a threshold-bounded disturbance (see src/reach/stealthy.hpp) turns
// "worst stealthy deviation" into a zonotope propagation that answers in
// microseconds.  This example
//   1. sweeps a static threshold level and tabulates the attacker's
//      deviation envelope against the pfc band — the crossover is the
//      largest provably safe static threshold (up to over-approximation),
//   2. compares the envelope of a synthesized decreasing vector with the
//      static one of equal FAR-relevant late-phase level,
//   3. cross-checks the certificate against template attacks — the
//      registered template-search scenario with the certified level as the
//      deployed detector.
//
//   ./examples/attacker_capability
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  util::set_log_level(util::LogLevel::kWarn);

  const scenario::Registry& registry = scenario::Registry::instance();
  const models::CaseStudy& cs = registry.study("trajectory");
  const synth::ReachCriterion pfc(0, 0.0, 0.05);
  const std::size_t T = cs.horizon;

  // --- 1. capability sweep over static threshold levels ----------------------
  std::printf("%-12s %-18s %-10s\n", "threshold", "max |deviation|", "certified");
  std::printf("%-12s %-18s %-10s\n", "---------", "---------------", "---------");
  double largest_safe = 0.0;
  for (double th : {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    const detect::ThresholdVector vec = detect::ThresholdVector::constant(T, th);
    const double dev = reach::max_stealthy_deviation(cs.loop, 0, 0.0, vec, T);
    const bool safe = reach::certify_no_stealthy_violation(cs.loop, pfc, vec, T);
    if (safe) largest_safe = th;
    std::printf("%-12.3f %-18.4f %-10s\n", th, dev, safe ? "SAFE" : "unknown");
  }
  std::printf("\nlargest certified-safe static level in the sweep: %.3f\n\n",
              largest_safe);

  // --- 2. decreasing vector vs static at the same late level ------------------
  detect::ThresholdVector decreasing(T);
  for (std::size_t k = 0; k < T; ++k) {
    const double frac = static_cast<double>(k) / static_cast<double>(T - 1);
    decreasing.set(k, 4.0 * largest_safe * (1.0 - frac) + largest_safe * frac);
  }
  const bool dec_safe =
      reach::certify_no_stealthy_violation(cs.loop, pfc, decreasing, T);
  std::printf("decreasing vector (4x early, 1x late): %s\n",
              dec_safe ? "certified safe — looser early thresholds cost no "
                         "safety (the estimator transient dominates early "
                         "residues anyway)"
                       : "not certifiable by the envelope (needs Algorithm 1)");

  // --- 3. cross-check with template attacks ----------------------------------
  scenario::ScenarioSpec spec = registry.at("trajectory/templates");
  spec.name = "trajectory/templates@certified";
  spec.detectors = {scenario::DetectorSpec::static_threshold("certified static",
                                                             largest_safe)};
  const scenario::Report report = scenario::ExperimentRunner().run(spec);
  const scenario::ReportTable& table = *report.table("templates");
  std::printf("\ntemplate attacks against the certified static level:\n");
  for (const auto& row : table.rows) {
    // columns: template, min_magnitude, caught_by_monitors,
    //          caught_by_detector, residue_peak, deviation, stealthy
    const std::string& name = row[0];
    const std::string& magnitude = row[1];
    const bool caught = row[3] == "yes";
    if (magnitude == "-") {
      std::printf("  %-10s cannot violate pfc at any magnitude tried\n",
                  name.c_str());
      continue;
    }
    std::printf("  %-10s needs magnitude %s to break pfc -> detector %s\n",
                name.c_str(), magnitude.c_str(),
                caught ? "ALARMS (as certified)" : "silent (BUG)");
    if (!caught) return 1;  // would contradict the certificate
  }
  return 0;
}
