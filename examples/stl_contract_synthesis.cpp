// stl_contract_synthesis.cpp — STL contracts end-to-end.
//
// The paper fixes pfc to one reach property.  cpsguard generalizes: any
// bounded linear STL formula can be the contract.  This example
//   1. parses an STL contract from text ("reach the band AND never slew
//      faster than the actuator allows"),
//   2. monitors it on benign traces (boolean verdict + robustness margin),
//   3. hands it to Algorithm 1 as pfc and asks Z3 for a stealthy attack,
//   4. synthesizes a variable threshold against the STL contract — using
//      the relaxation synthesizer, whose convergence is guaranteed (the
//      paper's Algorithms 2/3 also accept STL criteria, but their greedy
//      cuts converge slowly when the contract's robustness margin is
//      tight) — and re-checks that no stealthy attack survives.
//
//   ./examples/stl_contract_synthesis
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  util::set_log_level(util::LogLevel::kWarn);

  // Trajectory-tracking loop (paper Fig 1 setting, cold estimator).
  models::CaseStudy cs = models::make_trajectory_case_study();
  const std::size_t T = cs.horizon;

  // The contract, in STL text.  x0 is the deviation; u0 the corrective
  // input.  "Settle into the 6 cm band for two consecutive samples within
  // the horizon, and the input never saturates (|u| <= 8 — the nominal
  // transient peaks near 6.6)."  The nominal run satisfies it with margin:
  // x enters the band at sample 9 and stays.
  const std::string contract_text =
      "F[0," + std::to_string(T - 1) + "](G[0,1](abs(x0) <= 0.10))"
      " & G[0," + std::to_string(T - 1) + "](abs(u0) <= 8)";
  const stl::Formula contract = stl::parse(contract_text);
  std::printf("contract: %s\n", contract.str().c_str());
  std::printf("  depth %zu samples, %zu atoms\n\n", contract.depth(),
              contract.atom_count());

  // --- runtime monitoring on a benign noisy run -----------------------------
  const control::ClosedLoop loop(cs.loop);
  util::Rng rng(1);
  const control::Signal noise =
      control::bounded_uniform_signal(rng, T, cs.noise_bounds);
  const control::Trace benign = loop.simulate(T, nullptr, nullptr, &noise);
  std::printf("benign run : holds = %s, robustness = %+.4f\n",
              stl::holds(contract, benign) ? "yes" : "no",
              stl::robustness(contract, benign));

  // --- Algorithm 1 with the STL contract as pfc -----------------------------
  synth::AttackProblem problem = cs.attack_problem();
  problem.pfc = stl::criterion(contract);
  auto z3 = std::make_shared<solver::Z3Backend>();
  auto lp = std::make_shared<solver::LpBackend>();
  synth::AttackVectorSynthesizer avs(std::move(problem), z3, lp);

  const synth::AttackResult attack = avs.synthesize(detect::ThresholdVector());
  if (attack.found()) {
    std::printf("\nno detector: stealthy attack found (backend %s, %.2fs)\n",
                attack.backend.c_str(), attack.solve_seconds);
    std::printf("  attacked run: holds = %s, robustness = %+.4f\n",
                stl::holds(contract, attack.trace) ? "yes" : "no",
                stl::robustness(contract, attack.trace));
  } else {
    std::printf("\nno attack exists even without a detector — contract is "
                "attack-proof as stated\n");
    return 0;
  }

  // --- threshold synthesis against the STL contract -------------------------
  const synth::SynthesisResult synth_result =
      synth::relaxation_threshold_synthesis(avs);
  std::printf("\nrelaxation synthesis (STL pfc): %zu rounds, converged=%s, "
              "certified=%s\n",
              synth_result.rounds, synth_result.converged ? "yes" : "no",
              synth_result.certified ? "yes" : "no");
  std::printf("threshold vector: %s\n", synth_result.thresholds.str().c_str());

  const synth::AttackResult recheck = avs.synthesize(synth_result.thresholds);
  std::printf("re-check with synthesized thresholds: %s\n",
              recheck.found() ? "ATTACK SURVIVES (unexpected)"
                              : "no stealthy attack (certified by Z3)");
  return recheck.found() ? 1 : 0;
}
