// stl_contract_synthesis.cpp — STL contracts end-to-end.
//
// The paper fixes pfc to one reach property.  cpsguard generalizes: any
// bounded linear STL formula can be the contract, and a ScenarioSpec's
// pfc_override swaps it in without touching the rest of the spec.  This
// example
//   1. parses an STL contract from text ("reach the band AND never slew
//      faster than the actuator allows"),
//   2. monitors it on a benign trace (boolean verdict + robustness margin),
//   3. hands it to Algorithm 1 as pfc via a copied registry spec,
//   4. synthesizes a variable threshold against the STL contract and
//      re-checks (the synthesis report's recheck column) that no stealthy
//      attack survives.
//
//   ./examples/stl_contract_synthesis
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  util::set_log_level(util::LogLevel::kWarn);

  // Trajectory-tracking loop (paper Fig 1 setting).
  const scenario::Registry& registry = scenario::Registry::instance();
  const models::CaseStudy& cs = registry.study("trajectory");
  const std::size_t T = cs.horizon;

  // The contract, in STL text.  x0 is the deviation; u0 the corrective
  // input.  "Settle into the band for two consecutive samples within the
  // horizon, and the input never saturates."
  const std::string contract_text =
      "F[0," + std::to_string(T - 1) + "](G[0,1](abs(x0) <= 0.10))"
      " & G[0," + std::to_string(T - 1) + "](abs(u0) <= 8)";
  const stl::Formula contract = stl::parse(contract_text);
  std::printf("contract: %s\n", contract.str().c_str());
  std::printf("  depth %zu samples, %zu atoms\n\n", contract.depth(),
              contract.atom_count());

  // --- runtime monitoring on a benign noisy run -----------------------------
  const control::ClosedLoop loop(cs.loop);
  util::Rng rng(1);
  const control::Signal noise =
      control::bounded_uniform_signal(rng, T, cs.noise_bounds);
  const control::Trace benign = loop.simulate(T, nullptr, nullptr, &noise);
  std::printf("benign run : holds = %s, robustness = %+.4f\n",
              stl::holds(contract, benign) ? "yes" : "no",
              stl::robustness(contract, benign));

  // --- Algorithm 1 with the STL contract as pfc -----------------------------
  // The registry spec is data: copy it, swap the criterion, run.
  scenario::ScenarioSpec probe = registry.at("trajectory/single");
  probe.name = "stl/attack";
  probe.title = "trajectory tracking under an STL contract";
  probe.protocol = scenario::Protocol::kAttack;
  probe.pfc_override = stl::criterion(contract);
  probe.objective = synth::AttackObjective::kAny;
  probe.detectors.clear();

  const scenario::ExperimentRunner runner;
  const scenario::Report attack = runner.run(probe);
  if (attack.summary("found") == "yes") {
    std::printf("\nno detector: stealthy attack found (backend %s, %ss)\n",
                attack.summary("backend").c_str(),
                attack.summary("solve_seconds").c_str());
    std::printf("  attacked run: robustness = %s (< 0: contract violated)\n",
                attack.summary("deviation").c_str());
  } else {
    std::printf("\nno attack exists even without a detector — contract is "
                "attack-proof as stated\n");
    return 0;
  }

  // --- threshold synthesis against the STL contract -------------------------
  scenario::ScenarioSpec harden = probe;
  harden.name = "stl/synth";
  harden.protocol = scenario::Protocol::kSynthesis;
  harden.detectors = {scenario::DetectorSpec::synthesis(
      scenario::DetectorSpec::Kind::kSynthRelaxation, "relaxation")};
  const scenario::Report synthesis = runner.run(harden);
  std::printf("\n%s\n", synthesis.text().c_str());

  // The protocol re-checks each synthesized vector with Algorithm 1; unsat
  // means Z3 certified that no stealthy attack survives.
  const scenario::ReportTable& table = *synthesis.table("synthesis");
  const std::string& recheck = table.rows.front().back();
  std::printf("re-check with synthesized thresholds: %s\n",
              recheck == "unsat" ? "no stealthy attack (certified by Z3)"
                                 : ("ATTACK SURVIVES (" + recheck + ")").c_str());
  return recheck == "unsat" ? 0 : 1;
}
