// quickstart.cpp — the 60-second tour of cpsguard.
//
// Experiments are data: every bundled plant is pre-registered in
// scenario::Registry with a family of default scenarios, and one
// ExperimentRunner executes any of them.  The tour below asks Algorithm 1
// whether a stealthy attack exists, synthesizes a provably safe variable
// threshold, measures its false alarm rate, and ships the C detector —
// each step a registry lookup (or a copied spec) plus a report read.
//
//   ./examples/quickstart            (same pipeline: cpsguard_cli run quickstart)
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  const scenario::Registry& registry = scenario::Registry::instance();
  const scenario::ExperimentRunner runner;

  // 1. Does a stealthy attack defeat the contract?  The registered
  //    "quickstart" scenario carries the study (double-integrator deviation
  //    loop, |x0| <= 0.05 m after 10 samples, spoof limit 0.3 m); specs are
  //    plain data, so switching the protocol is an assignment.
  scenario::ScenarioSpec probe = registry.at("quickstart");
  probe.name = "quickstart/attack";
  probe.protocol = scenario::Protocol::kAttack;
  probe.detectors.clear();  // "without a detector": monitors alone
  const scenario::Report attack = runner.run(probe);
  const bool attack_found = attack.summary("found") == "yes";
  std::printf("stealthy attack without a detector: %s\n",
              attack_found ? "EXISTS" : "none");
  if (attack_found)
    std::printf("  final deviation under attack: %s m (tolerance 0.05 m)\n",
                attack.summary("deviation").c_str());

  // 2. Synthesize a certified variable threshold and Monte-Carlo its false
  //    alarm rate — the registered quickstart scenario end-to-end.
  const scenario::Report report = runner.run(registry.at("quickstart"));
  std::printf("\n%s\n", report.text().c_str());

  // 3. Ship it: the synthesized thresholds ride in the report; emit the C
  //    module an ECU build would compile.
  const std::vector<double>* thresholds = report.series("th/synthesized");
  if (thresholds != nullptr) {
    codegen::write_detector_c("quickstart_detector.c",
                              registry.study("quickstart").loop,
                              detect::ThresholdVector(*thresholds),
                              monitor::MonitorSet{});
    std::printf("wrote quickstart_detector.c (self-contained C99 detector)\n");
  }

  // 4. Every report serializes: JSON for machines, CSV mirrors for plots.
  report.write_json("quickstart_report.json");
  std::printf("wrote quickstart_report.json\n");
  return 0;
}
