// quickstart.cpp — the 60-second tour of cpsguard.
//
// Workflow: describe a plant, design the loop, state what "working" means
// (pfc), ask Algorithm 1 whether a stealthy attack exists, synthesize a
// provably safe variable threshold with Algorithm 3, and check its false
// alarm rate against benign noise.
//
//   ./examples/quickstart
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  // 1. A plant: continuous-time double-integrator-ish deviation dynamics,
  //    discretized at 10 Hz.  (Any LTI model works; see src/models for the
  //    paper's case studies.)
  control::ContinuousLti ct;
  ct.a = linalg::Matrix{{0.0, 1.0}, {-4.0, -2.8}};
  ct.b = linalg::Matrix{{0.0}, {1.0}};
  ct.c = linalg::Matrix{{1.0, 0.0}};
  ct.d = linalg::Matrix{{0.0}};
  control::DiscreteLti plant = control::c2d(ct, 0.1);
  plant.q = 1e-3 * linalg::Matrix::identity(2);  // process noise covariance
  plant.r = linalg::Matrix{{2.5e-5}};            // measurement noise covariance

  // 2. Close the loop: LQR state feedback on a steady-state Kalman estimate.
  control::LoopConfig loop = control::LoopConfig::design(
      plant, /*state_cost=*/linalg::Matrix::diagonal(linalg::Vector{400.0, 40.0}),
      /*input_cost=*/linalg::Matrix{{0.2}}, /*reference=*/linalg::Vector{0.0});
  loop.x1 = linalg::Vector{0.4, 0.0};  // event: 0.4 m deviation to regulate away
  loop.xhat1 = loop.x1;

  // 3. The contract: deviation within +-5 cm after 10 samples.
  const synth::ReachCriterion pfc(/*state_index=*/0, /*target=*/0.0, /*tol=*/0.05);

  // 4. Algorithm 1: does a stealthy attack defeat the contract?
  synth::AttackProblem problem{loop,
                               pfc,
                               monitor::MonitorSet{},  // no pre-existing monitors
                               /*horizon=*/10,
                               control::Norm::kInf,
                               /*init=*/{},
                               /*attack_bound=*/0.3};  // spoof limit: 0.3 m per sample
  auto z3 = std::make_shared<solver::Z3Backend>();
  auto lp = std::make_shared<solver::LpBackend>();
  synth::AttackVectorSynthesizer attvecsyn(problem, z3, lp);

  const synth::AttackResult attack =
      attvecsyn.synthesize(detect::ThresholdVector(problem.horizon));
  std::printf("stealthy attack without a detector: %s\n",
              attack.found() ? "EXISTS" : "none");
  if (attack.found()) {
    std::printf("  final deviation under attack: %.3f m (tolerance 0.05 m)\n",
                pfc.deviation(attack.trace));
  }

  // 5. Synthesize a variable threshold that provably blocks every such
  //    attack.  (The paper's CEGIS loops are pivot_/stepwise_threshold_
  //    synthesis; the relaxation extension shown here guarantees
  //    convergence and a certified result.)
  const synth::SynthesisResult th = synth::relaxation_threshold_synthesis(attvecsyn);
  std::printf("relaxation synthesis: %zu rounds, converged=%s, certified=%s\n",
              th.rounds, th.converged ? "yes" : "no", th.certified ? "yes" : "no");
  std::printf("  thresholds: %s\n", th.thresholds.str().c_str());

  // 6. How twitchy is the detector?  Monte-Carlo FAR against benign noise.
  detect::FarSetup far;
  far.num_runs = 500;
  far.horizon = problem.horizon;
  far.noise_bounds = linalg::Vector{0.01};
  const detect::FarReport report = detect::evaluate_far(
      control::ClosedLoop(loop), monitor::MonitorSet{},
      {{"synthesized", detect::ResidueDetector(th.thresholds, problem.norm)}}, far);
  std::printf("false alarm rate on benign noise: %.1f %%\n",
              100.0 * report.rows[0].rate());

  // 7. Ship it: emit the C module an ECU build would compile.
  codegen::write_detector_c("quickstart_detector.c", loop, th.thresholds,
                            monitor::MonitorSet{});
  std::printf("wrote quickstart_detector.c (self-contained C99 detector)\n");
  return 0;
}
