// can_mitm_study.cpp — the attack surface at frame level.
//
// The paper's attacker sits on the CAN bus between the yaw-rate /
// lateral-acceleration sensors and the VSC.  This example drives the VSC
// loop (from the scenario registry's case-study catalogue) through the CAN
// transport model and shows
//   1. what the bus itself costs: quantization floor and arbitration load,
//   2. that a benign run over CAN still meets pfc,
//   3. a frame-level MITM spoof: physically bounded by the codec's full
//      scale, caught or missed depending on the deployed threshold,
//   4. a replay MITM (stale frames) and its residue signature.
//
//   ./examples/can_mitm_study
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  util::set_log_level(util::LogLevel::kWarn);

  const models::CaseStudy& cs = scenario::Registry::instance().study("vsc");
  const can::CanLoopTransport transport = models::make_vsc_transport();
  const std::size_t T = cs.horizon;

  // --- 1. bus characteristics ------------------------------------------------
  const linalg::Vector floor = transport.quantization_floor();
  std::printf("codec quantization floor: gamma %.2e rad/s, a_y %.2e m/s^2\n",
              floor[0], floor[1]);
  const can::BusReport bus = transport.bus_report(T);
  std::printf("bus: %zu frames, utilization %.2f %%, worst latency %.0f us\n\n",
              bus.frames.size(), 100.0 * bus.utilization(),
              1e6 * bus.worst_latency);

  // --- 2. benign run over CAN -------------------------------------------------
  const control::Trace benign = transport.simulate(T);
  std::printf("benign over CAN: pfc %s (final gamma %.4f rad/s)\n",
              cs.pfc.satisfied(benign) ? "satisfied" : "VIOLATED",
              benign.x.back()[1]);

  // A detector needs thresholds above the quantization floor; verify the
  // benign residue peak over CAN stays small.
  double benign_peak = 0.0;
  for (double v : benign.residue_norms(cs.norm))
    benign_peak = std::max(benign_peak, v);
  std::printf("benign residue peak over CAN: %.3e\n\n", benign_peak);

  // --- 3. additive MITM on the yaw-rate message -------------------------------
  const can::Mitm spoof =
      can::additive_mitm(models::vsc_yaw_rate_binding(), {0.02});
  const control::Trace attacked = transport.simulate(T, &spoof);
  double attacked_peak = 0.0;
  for (double v : attacked.residue_norms(cs.norm))
    attacked_peak = std::max(attacked_peak, v);
  std::printf("MITM +0.02 rad/s on YRS_01: pfc %s, residue peak %.3e\n",
              cs.pfc.satisfied(attacked) ? "satisfied" : "VIOLATED",
              attacked_peak);
  std::printf("  monitoring system (mdc): %s\n",
              cs.mdc.stealthy(attacked) ? "silent" : "alarm");

  // The deployed detector: a conservative static threshold vs one tight
  // enough to catch the spoof.
  for (double th : {5e-2, 1e-2}) {
    const detect::ResidueDetector det(detect::ThresholdVector::constant(T, th),
                                      cs.norm);
    const auto alarm = det.first_alarm(attacked);
    std::printf("  static threshold %.0e: %s\n", th,
                alarm ? ("alarm at sample " + std::to_string(*alarm)).c_str()
                      : "silent (attack passes)");
  }

  // --- 4. replay MITM ---------------------------------------------------------
  const can::Mitm replay = can::replay_mitm(8);
  const control::Trace replayed = transport.simulate(T, &replay);
  double replay_peak = 0.0;
  for (double v : replayed.residue_norms(cs.norm))
    replay_peak = std::max(replay_peak, v);
  std::printf("\nreplay (8-sample stale frames): pfc %s, residue peak %.3e, "
              "mdc %s\n",
              cs.pfc.satisfied(replayed) ? "satisfied" : "VIOLATED", replay_peak,
              cs.mdc.stealthy(replayed) ? "silent" : "alarm");
  return 0;
}
