// vsc_attack_analysis.cpp — the paper's Section IV workflow on the Vehicle
// Stability Controller: probe the industrial monitoring system for stealthy
// attacks (Algorithm 1), inspect the worst one, then harden the system with
// a synthesized variable threshold and prove the attack channel closed.
//
//   ./examples/vsc_attack_analysis
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  util::set_log_level(util::LogLevel::kInfo);
  const models::VscParams params;
  const models::CaseStudy cs = models::make_vsc_case_study(params);

  std::printf("VSC case study (Ts = %.0f ms, horizon %zu samples)\n",
              params.ts * 1000.0, cs.horizon);
  std::printf("monitoring system:\n%s\n\n", cs.mdc.describe().c_str());

  auto z3 = std::make_shared<solver::Z3Backend>();
  auto lp = std::make_shared<solver::LpBackend>();
  synth::AttackVectorSynthesizer attvecsyn(cs.attack_problem(), z3, lp);

  // --- 1. Is the existing monitoring system enough? -------------------------
  const synth::AttackResult worst = attvecsyn.synthesize(
      detect::ThresholdVector(cs.horizon), synth::AttackObjective::kMaxDeviation);
  if (!worst.found()) {
    std::printf("No stealthy attack exists — the monitors suffice.\n");
    return 0;
  }
  std::printf("Stealthy attack found (%s, %.2f s solve):\n", worst.backend.c_str(),
              worst.solve_seconds);
  std::printf("  yaw rate misses the reference by %.4f rad/s (tolerance %.4f)\n",
              cs.pfc.deviation(worst.trace), cs.pfc.tolerance());
  std::printf("  monitoring system silent: %s\n\n",
              cs.mdc.stealthy(worst.trace) ? "yes" : "no");

  // Print the attack vector itself — this is what an adversary would inject
  // on the CAN bus at each 40 ms slot.
  std::printf("  k :   a_gamma [rad/s]   a_ay [m/s^2]   ||z_k||\n");
  const auto norms = worst.trace.residue_norms(cs.norm);
  for (std::size_t k = 0; k < cs.horizon; k += 5) {
    std::printf("  %2zu:   %+11.5f      %+10.5f     %.5f\n", k + 1,
                worst.attack[k][0], worst.attack[k][1], norms[k]);
  }

  // --- 2. Harden: synthesize a variable threshold ---------------------------
  // (The paper's Algorithm 3 is stepwise_threshold_synthesis; run fig3 for
  // its behaviour.  The relaxation synthesizer used here converges with a
  // certified result, which is what a hardening workflow needs.)
  const synth::SynthesisResult hard = synth::relaxation_threshold_synthesis(attvecsyn);
  std::printf("\nrelaxation synthesis: %zu rounds, converged=%s, certified=%s\n",
              hard.rounds, hard.converged ? "yes" : "no",
              hard.certified ? "yes" : "no");
  std::printf("  thresholds: %s\n", hard.thresholds.str().c_str());

  // --- 3. Verify the hardened system ---------------------------------------
  const synth::AttackResult recheck = attvecsyn.synthesize(hard.thresholds);
  std::printf("\nATTVECSYN against the hardened detector: %s%s\n",
              solver::status_name(recheck.status).c_str(),
              recheck.status == solver::SolveStatus::kUnsat && recheck.certified
                  ? " (Z3-certified: no stealthy attack exists)"
                  : "");

  // The detector also catches the previously synthesized worst attack.
  const detect::ResidueDetector detector(hard.thresholds, cs.norm);
  const auto alarm = detector.first_alarm(worst.trace);
  if (alarm) std::printf("the worst attack now alarms at sample %zu\n", *alarm);

  // --- 4. Deploy ------------------------------------------------------------
  codegen::write_detector_c("vsc_detector.c", cs.loop, hard.thresholds, cs.mdc);
  std::printf("wrote vsc_detector.c — compile with: cc -std=c99 -DCPSGUARD_SELFTEST "
              "vsc_detector.c -lm\n");
  return 0;
}
