// vsc_attack_analysis.cpp — the paper's Section IV workflow on the Vehicle
// Stability Controller: probe the industrial monitoring system for stealthy
// attacks (Algorithm 1), inspect the worst one, then harden the system with
// a synthesized variable threshold and prove the attack channel closed.
//
// Both phases are registered scenarios ("fig2" probes, "vsc/harden"
// synthesizes + re-certifies); this example runs them and reads the
// reports.
//
//   ./examples/vsc_attack_analysis
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  util::set_log_level(util::LogLevel::kInfo);
  const scenario::Registry& registry = scenario::Registry::instance();
  const scenario::ExperimentRunner runner;
  const models::CaseStudy& cs = registry.study("vsc");

  std::printf("VSC case study (horizon %zu samples)\n", cs.horizon);
  std::printf("monitoring system:\n%s\n\n", cs.mdc.describe().c_str());

  // --- 1. Is the existing monitoring system enough? -------------------------
  const scenario::Report attack = runner.run(registry.at("fig2"));
  if (attack.summary("found") != "yes") {
    std::printf("No stealthy attack exists — the monitors suffice.\n");
    return 0;
  }
  std::printf("Stealthy attack found (%s, %s s solve):\n",
              attack.summary("backend").c_str(),
              attack.summary("solve_seconds").c_str());
  std::printf("  yaw rate misses the reference by %s rad/s (tolerance %s)\n",
              attack.summary("deviation").c_str(),
              attack.summary("tolerance").c_str());
  std::printf("  monitoring system silent: %s\n\n",
              attack.summary("monitors_silent").c_str());

  // The attack vector itself — what an adversary would inject on the CAN
  // bus at each 40 ms slot — rides in the report's series.
  const std::vector<double>& a_gamma = *attack.series("attack/a0");
  const std::vector<double>& a_ay = *attack.series("attack/a1");
  const std::vector<double>& norms = *attack.series("attack/z_norm");
  std::printf("  k :   a_gamma [rad/s]   a_ay [m/s^2]   ||z_k||\n");
  for (std::size_t k = 0; k < cs.horizon; k += 5)
    std::printf("  %2zu:   %+11.5f      %+10.5f     %.5f\n", k + 1, a_gamma[k],
                a_ay[k], norms[k]);

  // --- 2. Harden: synthesize a certified variable threshold -----------------
  // (The paper's Algorithm 3 is the "fig3" scenario; the relaxation
  // synthesizer used by vsc/harden converges with a certified result, which
  // is what a hardening workflow needs.  Its report re-checks safety: the
  // "recheck" column must read unsat.)
  const scenario::Report harden = runner.run(registry.at("vsc/harden"));
  std::printf("\n%s\n", harden.text().c_str());

  // --- 3. Verify the hardened system on the recorded worst attack -----------
  const detect::ThresholdVector hardened(*harden.series("th/relaxation"));
  if (const auto alarm = detect::first_alarm_in_series(norms, hardened))
    std::printf("the worst attack now alarms at sample %zu\n", *alarm);

  // --- 4. Deploy ------------------------------------------------------------
  codegen::write_detector_c(
      "vsc_detector.c", cs.loop,
      detect::ThresholdVector(*harden.series("th/relaxation")), cs.mdc);
  std::printf("wrote vsc_detector.c — compile with: cc -std=c99 -DCPSGUARD_SELFTEST "
              "vsc_detector.c -lm\n");
  return 0;
}
