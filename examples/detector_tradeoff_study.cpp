// detector_tradeoff_study.cpp — comparing detector families on one plant.
//
// Residue thresholds are not the only anomaly detectors: this example pits
// the synthesized variable threshold against chi-squared and CUSUM
// baselines on the DC-motor case study, measuring (a) whether each catches
// the solver-synthesized stealthy attack and (b) its false alarm rate on
// benign noise — the trade-off surface the paper's Fig. 1 sketches.
//
//   ./examples/detector_tradeoff_study
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  const models::CaseStudy cs = models::make_dcmotor_case_study();
  const control::ClosedLoop loop(cs.loop);

  auto z3 = std::make_shared<solver::Z3Backend>();
  auto lp = std::make_shared<solver::LpBackend>();
  synth::AttackVectorSynthesizer attvecsyn(cs.attack_problem(), z3, lp);

  // The adversary: most damaging stealthy attack against the monitors alone.
  const synth::AttackResult attack = attvecsyn.synthesize(
      detect::ThresholdVector(cs.horizon), synth::AttackObjective::kMaxDeviation);
  if (!attack.found()) {
    std::printf("no stealthy attack exists for this plant/monitor combination\n");
    return 0;
  }
  std::printf("adversary: stealthy attack with final speed error %.3f rad/s\n\n",
              cs.pfc.deviation(attack.trace));

  // Candidate detectors.
  const synth::SynthesisResult variable =
      synth::relaxation_threshold_synthesis(attvecsyn);
  const synth::StaticSynthesisResult fixed = synth::static_threshold_synthesis(attvecsyn);

  const control::KalmanDesign kd = control::design_kalman(cs.loop.plant);
  const detect::ResidueDetector det_var(variable.thresholds, cs.norm);
  const detect::ResidueDetector det_static(
      detect::ThresholdVector::constant(cs.horizon, std::max(fixed.threshold, 1e-9)),
      cs.norm);
  const detect::Chi2Detector det_chi2(kd.innovation, 6.63);  // ~1% tail for m=1
  const detect::CusumDetector det_cusum(/*drift=*/0.02, /*threshold=*/0.1, cs.norm);

  // Evaluate: detection of the attack + FAR over seeded noise runs.
  util::Rng rng(555);
  const std::size_t far_runs = 400;
  auto far_of = [&](auto&& detector) {
    std::size_t alarms = 0, kept = 0;
    util::Rng local(999);
    for (std::size_t i = 0; i < far_runs; ++i) {
      const auto noise =
          control::bounded_uniform_signal(local, cs.horizon, cs.noise_bounds);
      const auto tr = loop.simulate(cs.horizon, nullptr, nullptr, &noise);
      if (!cs.mdc.stealthy(tr)) continue;
      ++kept;
      if (detector.triggered(tr)) ++alarms;
    }
    return kept ? static_cast<double>(alarms) / static_cast<double>(kept) : 0.0;
  };

  util::TextTable t({"detector", "catches attack", "FAR on benign noise"});
  auto yn = [](bool b) { return std::string(b ? "yes" : "no"); };
  t.row({"variable threshold (synth)", yn(det_var.triggered(attack.trace)),
         util::format_double(100.0 * far_of(det_var), 3) + " %"});
  t.row({"static threshold (max safe)", yn(det_static.triggered(attack.trace)),
         util::format_double(100.0 * far_of(det_static), 3) + " %"});
  t.row({"chi-squared (1% tail)", yn(det_chi2.triggered(attack.trace)),
         util::format_double(100.0 * far_of(det_chi2), 3) + " %"});
  t.row({"CUSUM", yn(det_cusum.triggered(attack.trace)),
         util::format_double(100.0 * far_of(det_cusum), 3) + " %"});
  std::printf("%s\n", t.str().c_str());

  std::printf("reading: statistical detectors tuned for low FAR need not catch a\n"
              "worst-case stealthy attack — only the synthesized threshold comes\n"
              "with a proof (%s).\n",
              variable.certified ? "present" : "absent");
  (void)rng;
  return 0;
}
