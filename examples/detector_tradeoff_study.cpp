// detector_tradeoff_study.cpp — comparing detector families on one plant.
//
// Residue thresholds are not the only anomaly detectors: the registered
// "dcmotor/tradeoff" scenario pits the synthesized variable threshold
// against static, chi-squared and CUSUM baselines on the DC-motor case
// study, measuring (a) whether each catches the solver-synthesized
// stealthy attack and (b) its false alarm rate on benign noise — the
// trade-off surface the paper's Fig. 1 sketches, as one FAR protocol run.
//
//   ./examples/detector_tradeoff_study
#include <cstdio>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  const scenario::Registry& registry = scenario::Registry::instance();
  const scenario::Report report =
      scenario::ExperimentRunner().run(registry.at("dcmotor/tradeoff"));

  if (report.summary("attack_found") != "yes") {
    std::printf("no stealthy attack exists for this plant/monitor combination\n");
    return 0;
  }
  std::printf("adversary: stealthy attack with final speed error %s rad/s\n\n",
              report.summary("attack_deviation").c_str());
  std::printf("%s\n", report.text().c_str());

  std::printf("\nreading: statistical detectors tuned for low FAR need not catch a\n"
              "worst-case stealthy attack — only the synthesized threshold comes\n"
              "with a proof (see the synthesis table's certified column).\n");
  return 0;
}
