// embedded_deployment.cpp — from synthesis result to ECU-ready C code.
//
// Demonstrates the code generator: run the registered "suspension/synth"
// scenario (certified threshold synthesis), emit the C99 detector module
// from the reported thresholds, compile it with the system C compiler, and
// replay a noisy trace through BOTH the C++ runtime and the compiled C
// module to show they agree sample-by-sample.
//
//   ./examples/embedded_deployment
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  const scenario::Registry& registry = scenario::Registry::instance();
  const models::CaseStudy& cs = registry.study("suspension");

  const scenario::Report synthesis =
      scenario::ExperimentRunner().run(registry.at("suspension/synth"));
  std::printf("%s\n", synthesis.text().c_str());

  detect::ThresholdVector thresholds(*synthesis.series("th/relaxation"));
  if (thresholds.num_set() == 0) {
    // No attack existed; deploy a noise-calibrated constant instead.
    thresholds = detect::ThresholdVector::constant(cs.horizon, 0.01);
    std::printf("no threshold needed for safety; deploying noise-calibrated 0.01\n");
  }

  // Emit the C module.
  codegen::CodegenOptions copts;
  copts.symbol_prefix = "susp";
  copts.norm = cs.norm;
  codegen::write_detector_c("susp_detector.c", cs.loop, thresholds, cs.mdc, copts);
  std::printf("wrote susp_detector.c\n");

  // Compile it together with a tiny driver.
  std::ofstream driver("susp_driver.c");
  driver << "#include \"susp_detector.c\"\n#include <stdio.h>\n"
         << "int main(void){susp_state_t s;susp_init(&s);double y[susp_M],zn;\n"
         << " while(scanf(\"%lf %lf\",&y[0],&y[1])==2){\n"
         << "  int m=susp_step(&s,y,&zn);printf(\"%d %.12g\\n\",m,zn);}return 0;}\n";
  driver.close();
  if (std::system("cc -std=c99 -O2 -o susp_driver susp_driver.c -lm") != 0) {
    std::printf("no C compiler available; stopping after emission\n");
    return 0;
  }

  // Replay a noisy trace through both implementations.
  util::Rng rng(42);
  const auto noise = control::bounded_uniform_signal(rng, cs.horizon, cs.noise_bounds);
  const auto tr = control::ClosedLoop(cs.loop).simulate(cs.horizon, nullptr, nullptr,
                                                        &noise);
  {
    std::ofstream in("susp_input.txt");
    in.precision(17);
    for (const auto& y : tr.y) in << y[0] << ' ' << y[1] << '\n';
  }
  if (std::system("./susp_driver < susp_input.txt > susp_output.txt") != 0) return 1;

  std::ifstream out("susp_output.txt");
  const detect::ResidueDetector cpp_det(thresholds, cs.norm);
  int mask = 0;
  double zn = 0.0;
  std::size_t k = 0, mismatches = 0;
  while (out >> mask >> zn && k < tr.steps()) {
    const double ref = control::vector_norm(tr.z[k], cs.norm);
    if (std::abs(zn - ref) > 1e-9) ++mismatches;
    ++k;
  }
  std::printf("replayed %zu samples through the compiled C detector: %zu residue "
              "mismatches\n",
              k, mismatches);
  std::printf("C module final alarm mask: %d; C++ runtime alarms: residue=%s "
              "monitors=%s\n",
              mask, cpp_det.triggered(tr) ? "yes" : "no",
              cs.mdc.stealthy(tr) ? "no" : "yes");
  return mismatches == 0 ? 0 : 1;
}
