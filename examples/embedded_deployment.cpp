// embedded_deployment.cpp — from synthesis result to ECU-ready C code.
//
// Demonstrates the code generator: run the registered "suspension/synth"
// scenario (certified threshold synthesis), emit the C99 detector module
// from the reported thresholds, compile it with the system C compiler, and
// replay a noisy trace through BOTH the C++ runtime and the compiled C
// module to show they agree sample-by-sample.  The C++ side streams
// through the service-facing detect::Session API — the same handle
// cpsguard_serve multiplexes — including a snapshot()/restore() hand-off
// halfway through the replay, so the deployed C module is checked against
// exactly the state machine the detection service runs.
//
//   ./examples/embedded_deployment
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "cpsguard.hpp"

using namespace cpsguard;

int main() {
  const scenario::Registry& registry = scenario::Registry::instance();
  const models::CaseStudy& cs = registry.study("suspension");

  const scenario::Report synthesis =
      scenario::ExperimentRunner().run(registry.at("suspension/synth"));
  std::printf("%s\n", synthesis.text().c_str());

  detect::ThresholdVector thresholds(*synthesis.series("th/relaxation"));
  if (thresholds.num_set() == 0) {
    // No attack existed; deploy a noise-calibrated constant instead.
    thresholds = detect::ThresholdVector::constant(cs.horizon, 0.01);
    std::printf("no threshold needed for safety; deploying noise-calibrated 0.01\n");
  }

  // Emit the C module.
  codegen::CodegenOptions copts;
  copts.symbol_prefix = "susp";
  copts.norm = cs.norm;
  codegen::write_detector_c("susp_detector.c", cs.loop, thresholds, cs.mdc, copts);
  std::printf("wrote susp_detector.c\n");

  // Compile it together with a tiny driver.
  std::ofstream driver("susp_driver.c");
  driver << "#include \"susp_detector.c\"\n#include <stdio.h>\n"
         << "int main(void){susp_state_t s;susp_init(&s);double y[susp_M],zn;\n"
         << " while(scanf(\"%lf %lf\",&y[0],&y[1])==2){\n"
         << "  int m=susp_step(&s,y,&zn);printf(\"%d %.12g\\n\",m,zn);}return 0;}\n";
  driver.close();
  if (std::system("cc -std=c99 -O2 -o susp_driver susp_driver.c -lm") != 0) {
    std::printf("no C compiler available; stopping after emission\n");
    return 0;
  }

  // Replay a noisy trace through both implementations.
  util::Rng rng(42);
  const auto noise = control::bounded_uniform_signal(rng, cs.horizon, cs.noise_bounds);
  const auto tr = control::ClosedLoop(cs.loop).simulate(cs.horizon, nullptr, nullptr,
                                                        &noise);
  {
    std::ofstream in("susp_input.txt");
    in.precision(17);
    for (const auto& y : tr.y) in << y[0] << ' ' << y[1] << '\n';
  }
  if (std::system("./susp_driver < susp_input.txt > susp_output.txt") != 0) return 1;

  // The C++ reference is a streaming Session over the same thresholds —
  // the handle the detection service feeds — snapshotted and restored at
  // the halfway instant to prove the hand-off is seamless.
  const detect::ResidueDetector cpp_det(thresholds, cs.norm);
  const auto blueprint = std::make_shared<detect::SessionBlueprint>(
      "suspension/synth", std::vector<std::string>{"residue"},
      std::vector<detect::DetectorFactory>{
          [cpp_det] { return cpp_det.make_online(); }});
  detect::Session session(blueprint);

  std::ifstream out("susp_output.txt");
  int mask = 0;
  double zn = 0.0;
  std::size_t k = 0, mismatches = 0;
  while (out >> mask >> zn && k < tr.steps()) {
    if (k == tr.steps() / 2)
      session = detect::Session::restore(blueprint, session.snapshot());
    session.feed(tr.z[k]);
    const double ref = control::vector_norm(tr.z[k], cs.norm);
    if (std::abs(zn - ref) > 1e-9) ++mismatches;
    ++k;
  }
  const bool session_alarmed = session.first_alarms()[0].has_value();
  if (session_alarmed != cpp_det.triggered(tr)) {
    std::printf("session/batch alarm disagreement\n");
    return 1;
  }
  std::printf("replayed %zu samples through the compiled C detector: %zu residue "
              "mismatches\n",
              k, mismatches);
  std::printf("C module final alarm mask: %d; C++ runtime alarms: residue=%s "
              "monitors=%s\n",
              mask, session_alarmed ? "yes" : "no",
              cs.mdc.stealthy(tr) ? "no" : "yes");
  return mismatches == 0 ? 0 : 1;
}
